open Expr

(* [open Expr] shadows the integer operators; restore them locally. *)
let ( +! ) = Stdlib.( + )
let ( -! ) = Stdlib.( - )
let ( *! ) = Stdlib.( * )

(* Decompose a term of a sum into (numeric coefficient, factor list). *)
let decomp = function
  | Const c -> (c, [])
  | Mul (Const c :: fs) -> (c, fs)
  | Mul fs -> (1., fs)
  | e -> (1., [ e ])

let recomp (c, fs) =
  if fs = [] then const c
  else if c = 1. then mul fs
  else mul (const c :: fs)

(* Is [f] sin(x)^2 (resp. cos(x)^2)?  Returns the argument x. *)
let sin2_arg = function
  | Pow (Call (Sin, [ x ]), Const 2.) -> Some x
  | _ -> None

let cos2_arg = function
  | Pow (Call (Cos, [ x ]), Const 2.) -> Some x
  | _ -> None

(* Rewrite c*sin(x)^2*R + c*cos(x)^2*R into c*R inside a sum. *)
let pythagoras terms =
  let arr = Array.of_list terms in
  let dead = Array.make (Array.length arr) false in
  let extract probe i =
    if dead.(i) then None
    else
      let c, fs = decomp arr.(i) in
      let rec split before = function
        | [] -> None
        | f :: after -> (
            match probe f with
            | Some x -> Some (c, x, List.rev_append before after)
            | None -> split (f :: before) after)
      in
      split [] fs
  in
  let n = Array.length arr in
  let changed = ref false in
  for i = 0 to n -! 1 do
    match extract sin2_arg i with
    | None -> ()
    | Some (ci, xi, resti) ->
        let rec seek j =
          if j >= n then ()
          else
            match extract cos2_arg j with
            | Some (cj, xj, restj)
              when cj = ci && equal xi xj
                   && List.length resti = List.length restj
                   && List.for_all2 equal
                        (List.sort compare resti)
                        (List.sort compare restj) ->
                dead.(j) <- true;
                arr.(i) <- recomp (ci, resti);
                changed := true
            | _ -> seek (j +! 1)
        in
        seek 0
  done;
  if not !changed then add terms
  else
    add
      (Array.to_list arr
      |> List.filteri (fun i _ -> not dead.(i)))

(* Distribute a numeric constant over a sum: c*(a+b) -> c*a + c*b.  This is
   size-neutral and exposes like terms across equation boundaries. *)
let distribute_const factors =
  match factors with
  | Const c :: rest -> (
      let rec pick before = function
        | [] -> None
        | Add ts :: after ->
            Some
              (add
                 (List.map
                    (fun t -> mul ((const c :: t :: List.rev before) @ after))
                    ts))
        | f :: after -> pick (f :: before) after
      in
      match pick [] rest with Some e -> Some e | None -> None)
  | _ -> None

(* If [e] is a syntactically negative term (leading negative constant),
   return its negation. *)
let strip_negation = function
  | Const c when c < 0. -> Some (const (Float.neg c))
  | Mul (Const c :: rest) when c < 0. ->
      Some (mul (const (Float.neg c) :: rest))
  | Const _ | Var _ | Add _ | Mul _ | Pow _ | Call _ | If _ -> None

let is_odd_func = function
  | Sin | Tan | Asin | Atan | Sinh | Tanh | Sign -> true
  | Cos | Acos | Cosh | Exp | Log | Sqrt | Abs | Atan2 | Min | Max | Hypot ->
      false

let is_even_func = function
  | Cos | Cosh | Abs -> true
  | Sin | Tan | Asin | Acos | Atan | Sinh | Tanh | Sign | Exp | Log | Sqrt
  | Atan2 | Min | Max | Hypot ->
      false

let rec simplify e =
  let e = map_children simplify e in
  match e with
  | Add ts ->
      let e' = pythagoras ts in
      if equal e' e then e else simplify e'
  | Mul fs -> (
      match distribute_const fs with
      | Some e' when size e' <= size e -> simplify e'
      | _ -> e)
  | Call (Sqrt, [ Pow (b, Const 2.) ]) -> abs (simplify b)
  | Pow (Call (Sqrt, [ x ]), Const 2.) -> x
  | Pow (Call (Abs, [ x ]), Const 2.) -> sqr x
  | Call (Log, [ Call (Exp, [ x ]) ]) -> x
  | Call (Exp, [ Call (Log, [ x ]) ]) -> x
  | Call (Abs, [ Call (Abs, [ x ]) ]) -> abs x
  | Call (f, [ arg ]) when is_odd_func f || is_even_func f -> (
      (* Odd/even symmetry: f(-x) = ±f(x), pulling the sign out so like
         terms can collect. *)
      match strip_negation arg with
      | Some pos when is_odd_func f -> neg (call f [ pos ])
      | Some pos -> call f [ pos ]
      | None -> e)
  | Const _ | Var _ | Pow _ | Call _ | If _ -> e

(* Expansion works on lists of additive terms so that no subexpression is
   expanded twice; a term-count budget stops combinatorial blow-ups on
   pathological inputs (the partially expanded result is still correct). *)
let expand_budget = 2000

let rec expand e = add (terms e)

and terms e : t list =
  match e with
  | Add ts -> List.concat_map terms ts
  | Mul fs ->
      let factor_terms = List.map terms fs in
      let total =
        List.fold_left (fun acc l -> acc *! List.length l) 1 factor_terms
      in
      if total > expand_budget || total <= 0 then
        [ mul (List.map expand fs) ]
      else
        List.fold_left
          (fun acc ts ->
            List.concat_map (fun a -> List.map (fun t -> mul [ a; t ]) ts) acc)
          [ one ] factor_terms
  | Pow (b, Const n) when Float.is_integer n && n >= 2. && n <= 8. -> (
      let bt = terms b in
      let k = int_of_float n in
      let count = List.length bt in
      let rec pow_count i acc =
        if i = 0 then acc
        else if acc > expand_budget then acc
        else pow_count (i -! 1) (acc *! count)
      in
      if pow_count k 1 > expand_budget then [ pow (add bt) (const n) ]
      else
        let rec go i acc =
          if i = 0 then acc
          else
            go (i -! 1)
              (List.concat_map (fun a -> List.map (fun t -> mul [ a; t ]) bt) acc)
        in
        match go k [ one ] with [] -> [ one ] | ts -> ts)
  | Const _ | Var _ -> [ e ]
  | Pow _ | Call _ | If _ -> [ map_children expand e ]
