(** Direct numeric evaluation of expressions. *)

exception Unbound of string
(** Raised when evaluation meets a variable absent from the environment. *)

type env = (string, float) Hashtbl.t

val env_of_list : (string * float) list -> env

val eval : env -> Expr.t -> float
(** Tree-walking evaluation.  [If] nodes evaluate only the taken branch.
    @raise Unbound for free variables not in [env]. *)

val eval_fn : string array -> Expr.t -> float array -> float
(** [eval_fn names e] pre-resolves every variable of [e] to an index into
    [names] and returns a closure evaluating [e] against a value vector laid
    out like [names].  @raise Unbound at closure-build time. *)
