(** The historical stack-machine bytecode for expressions.

    Kept as the before-side baseline for the register VM ({!Vm}): a flat
    instruction array interpreted over an explicit operand stack, the
    kind of executable form a 1990s code generator would emit when no
    native compiler was available.  Semantics match {!Eval.eval}
    exactly; the property tests cross-check all three engines.

    Compilation is linear: variables resolve through a pre-built hash
    table and [If] jumps are back-patched in a growable buffer. *)

type instr =
  | Push of float
  | Load of int  (** push env.(slot) *)
  | Add_n of int  (** pop n values, push their sum *)
  | Mul_n of int
  | Pow_op  (** pop exponent then base, push base^exponent *)
  | Call_f of Expr.func  (** pop arity-many arguments *)
  | Jump of int  (** absolute instruction index *)
  | Jump_if_not of Expr.rel * int
      (** pop rhs then lhs; jump unless [lhs rel rhs] *)

type program

val compile : string array -> Expr.t -> program
(** Variables resolve to slots in the given name layout.
    @raise Eval.Unbound for unknown variables. *)

val run : program -> float array -> float
(** Execute against an environment laid out like the compile-time
    names.  The operand stack is sized at compile time. *)

val length : program -> int
(** Instruction count. *)

val max_stack : program -> int

val instructions : program -> instr array
(** For inspection and tests. *)

val disassemble : program -> string
