(** Peephole / fusion optimiser for the flat register code produced by
    {!Vm}'s lowering.

    Input programs must use write-once virtual registers: every register
    is assigned by exactly one instruction, except the join register of
    an [If], which is assigned by the final [Mov] of each branch.  Jump
    targets must be forward-only.  {!Vm.compile} guarantees both.

    Passes (iterated to a fixpoint): constant folding and strength
    reduction, copy propagation, instruction fusion
    ([Mul]+[Add] -> [Fma], [Add]+[Neg] -> [Sub], load-load-mul[-add]
    superinstructions [Vmul]/[Vmacc]), and dead-store elimination.  All
    rewrites are IEEE-exact with respect to {!Eval.eval}. *)

type t = {
  code : int array;  (** flat code, {!Vm_code.stride} words/instruction *)
  consts : float array;  (** constant pool *)
  nregs : int;  (** virtual register count *)
  result : int;  (** register holding the final value, or -1 *)
}

val optimize : ?private_env_slot:(int -> bool) -> t -> t
(** Optimise a program.  [private_env_slot s] should return [true] for
    environment slots that only this program may read (task-private CSE
    temporaries); stores to such slots are deleted when no surviving
    instruction reads them.  Defaults to no slot being private. *)
