(* Peephole / fusion optimiser over the flat register code of {!Vm}.

   The lowering emits write-once virtual registers (every register is
   assigned by exactly one instruction, except the join register of an
   [If], which is assigned by the final [Mov] of each branch).  That
   invariant is what makes the passes below simple and sound:

   - a register read always sees the value of its unique definition, so
     constant knowledge and copy chains never need invalidation;
   - fusing a consumer with its operand's definition only requires that
     any environment slots the definition reads are not stored to in
     between (jumps are forward-only, so the instructions executed
     between two points are a subset of the program-order range);
   - a pure instruction whose destination has zero reads is dead.

   Passes, iterated to a fixpoint: constant folding + strength reduction
   (including [Pow x 2] -> [Sqr], [Pow x (-1)] -> [Recip], negation
   folding), copy propagation, fusion ([Mul]+[Add] -> [Fma],
   [Add]+[Neg] -> [Sub]) and the load-load-mul-add superinstructions
   ([Vmul]/[Vmacc]) that dominate the bearing contact equations, then
   dead-store elimination.  Finally the code is compacted: dead
   instructions dropped, jump targets re-patched, registers and the
   constant pool renumbered densely.

   Only IEEE-exact rewrites are applied: [x*1 -> x], [x*(-1) -> -x],
   [x + (-y) -> x - y] and constant folding are bit-exact; [x+0 -> x]
   and [x*0 -> 0] are NOT (they mishandle -0, nan and infinities) and
   are deliberately absent.  [Fma] evaluates as two rounded operations
   ([a *. b +. c]), matching {!Eval.eval} exactly. *)

open Vm_code

type t = {
  code : int array;
  consts : float array;
  nregs : int;
  result : int;  (* register holding the final value, or -1 *)
}

let optimize ?(private_env_slot = fun _ -> false) (p : t) =
  let n = Array.length p.code / stride in
  if n = 0 then p
  else begin
    let op = Array.make n 0
    and dst = Array.make n 0
    and fa = Array.make n 0
    and fb = Array.make n 0
    and fc = Array.make n 0 in
    for i = 0 to n - 1 do
      op.(i) <- p.code.((i * stride) + 0);
      dst.(i) <- p.code.((i * stride) + 1);
      fa.(i) <- p.code.((i * stride) + 2);
      fb.(i) <- p.code.((i * stride) + 3);
      fc.(i) <- p.code.((i * stride) + 4)
    done;
    let live = Array.make n true in
    (* Growable constant pool.  Existing constants keep their indices
       (even duplicates, so instruction operands stay valid); new
       constants are deduplicated by bit pattern, which keeps -0.0 and
       0.0 distinct. *)
    let pool_vals = ref (Array.make (max 8 (Array.length p.consts)) 0.) in
    let pool_n = ref 0 in
    let pool_tbl : (int64, int) Hashtbl.t = Hashtbl.create 16 in
    let push_const x =
      if !pool_n >= Array.length !pool_vals then begin
        let bigger = Array.make (2 * Array.length !pool_vals) 0. in
        Array.blit !pool_vals 0 bigger 0 !pool_n;
        pool_vals := bigger
      end;
      !pool_vals.(!pool_n) <- x;
      let key = Int64.bits_of_float x in
      if not (Hashtbl.mem pool_tbl key) then Hashtbl.add pool_tbl key !pool_n;
      incr pool_n
    in
    Array.iter push_const p.consts;
    let pool x =
      match Hashtbl.find_opt pool_tbl (Int64.bits_of_float x) with
      | Some i -> i
      | None ->
          let i = !pool_n in
          push_const x;
          i
    in
    let const_val i = !pool_vals.(i) in
    (* Register reads of an instruction, via the field kinds. *)
    let iter_reg_reads i f =
      let _, ka, kb, kc = field_kinds op.(i) in
      if ka = K_reg then f fa.(i);
      if kb = K_reg then f fb.(i);
      if kc = K_reg then f fc.(i)
    in
    let defc = Array.make p.nregs 0 in
    let defi = Array.make p.nregs (-1) in
    let compute_defs () =
      Array.fill defc 0 p.nregs 0;
      Array.fill defi 0 p.nregs (-1);
      for i = 0 to n - 1 do
        if live.(i) && writes_reg op.(i) then begin
          defc.(dst.(i)) <- defc.(dst.(i)) + 1;
          defi.(dst.(i)) <- i
        end
      done
    in
    (* Unique definition of register [r], or -1.  Multi-definition
       registers (If joins) are opaque to every pass. *)
    let def r = if defc.(r) = 1 then defi.(r) else -1 in
    (* No store to env slot [s] strictly between instructions j and i.
       Jumps are forward-only, so the instructions executed between two
       program points lie within the program-order range. *)
    let env_clean s j i =
      let rec go k =
        k >= i
        || ((not (live.(k) && op.(k) = op_ste && fc.(k) = s)) && go (k + 1))
      in
      go (j + 1)
    in
    (* ---- pass: constant folding and strength reduction ---- *)
    let fold_pass () =
      compute_defs ();
      let konst = Array.make p.nregs nan in
      let known = Array.make p.nregs false in
      let changed = ref false in
      let set_ldc i x =
        op.(i) <- op_ldc;
        fa.(i) <- 0;
        fb.(i) <- 0;
        fc.(i) <- pool x;
        changed := true
      in
      for i = 0 to n - 1 do
        if live.(i) then begin
          let k r = if known.(r) then Some konst.(r) else None in
          let o = op.(i) in
          if o = op_add || o = op_sub then begin
            match (k fa.(i), k fb.(i)) with
            | Some x, Some y ->
                set_ldc i (if o = op_add then x +. y else x -. y)
            | _, Some y ->
                (* x - y = x + (-y) exactly, so both collapse to addk. *)
                op.(i) <- op_addk;
                fb.(i) <- 0;
                fc.(i) <- pool (if o = op_add then y else -.y);
                changed := true
            | Some x, None when o = op_add ->
                op.(i) <- op_addk;
                fa.(i) <- fb.(i);
                fb.(i) <- 0;
                fc.(i) <- pool x;
                changed := true
            | _ -> ()
          end
          else if o = op_mul then begin
            match (k fa.(i), k fb.(i)) with
            | Some x, Some y -> set_ldc i (x *. y)
            | Some x, None | None, Some x ->
                let other = if known.(fa.(i)) then fb.(i) else fa.(i) in
                if x = -1. then begin
                  (* x * -1 = -x exactly. *)
                  op.(i) <- op_neg;
                  fa.(i) <- other;
                  fb.(i) <- 0
                end
                else if x = 1. then begin
                  (* x * 1 = x exactly. *)
                  op.(i) <- op_mov;
                  fa.(i) <- other;
                  fb.(i) <- 0
                end
                else begin
                  op.(i) <- op_mulk;
                  fa.(i) <- other;
                  fb.(i) <- 0;
                  fc.(i) <- pool x
                end;
                changed := true
            | None, None ->
                if fa.(i) = fb.(i) then begin
                  op.(i) <- op_sqr;
                  fb.(i) <- 0;
                  changed := true
                end
          end
          else if o = op_pow then begin
            match (k fa.(i), k fb.(i)) with
            | Some x, Some y -> set_ldc i (Expr.eval_pow x y)
            | None, Some 2. ->
                op.(i) <- op_sqr;
                fb.(i) <- 0;
                changed := true
            | None, Some 1. ->
                (* IEEE: pow (x, 1) = x for every x, including nan. *)
                op.(i) <- op_mov;
                fb.(i) <- 0;
                changed := true
            | None, Some y when y = -1. ->
                op.(i) <- op_recip;
                fb.(i) <- 0;
                changed := true
            | _ -> ()
          end
          else if o = op_neg then begin
            match k fa.(i) with Some x -> set_ldc i (-.x) | None -> ()
          end
          else if o = op_sqr then begin
            match k fa.(i) with Some x -> set_ldc i (x *. x) | None -> ()
          end
          else if o = op_recip then begin
            match k fa.(i) with Some x -> set_ldc i (1. /. x) | None -> ()
          end
          else if o = op_addk then begin
            match k fa.(i) with
            | Some x -> set_ldc i (x +. const_val fc.(i))
            | None -> ()
          end
          else if o = op_mulk then begin
            match k fa.(i) with
            | Some x -> set_ldc i (x *. const_val fc.(i))
            | None -> ()
          end
          else if o = op_fma then begin
            match (k fa.(i), k fb.(i), k fc.(i)) with
            | Some x, Some y, Some z -> set_ldc i ((x *. y) +. z)
            | _ -> ()
          end
          else if o = op_call1 then begin
            match k fa.(i) with
            | Some x ->
                set_ldc i (Expr.eval_func (func_of_prim1 fc.(i)) [ x ])
            | None -> ()
          end
          else if o = op_call2 then begin
            match (k fa.(i), k fb.(i)) with
            | Some x, Some y ->
                set_ldc i (Expr.eval_func (func_of_prim2 fc.(i)) [ x; y ])
            | _ -> ()
          end;
          (* Record constant knowledge for single-definition registers. *)
          let o = op.(i) in
          if writes_reg o && defc.(dst.(i)) = 1 then begin
            if o = op_ldc then begin
              known.(dst.(i)) <- true;
              konst.(dst.(i)) <- const_val fc.(i)
            end
            else if o = op_mov && known.(fa.(i)) then begin
              known.(dst.(i)) <- true;
              konst.(dst.(i)) <- konst.(fa.(i))
            end
          end
        end
      done;
      !changed
    in
    (* ---- pass: copy propagation ---- *)
    let copyprop_pass () =
      compute_defs ();
      let rec root r =
        let j = def r in
        if j >= 0 && op.(j) = op_mov then root fa.(j) else r
      in
      let changed = ref false in
      for i = 0 to n - 1 do
        if live.(i) then begin
          let _, ka, kb, kc = field_kinds op.(i) in
          let subst kind get set =
            if kind = K_reg then begin
              let r = get () in
              let r' = root r in
              if r' <> r then begin
                set r';
                changed := true
              end
            end
          in
          subst ka (fun () -> fa.(i)) (fun v -> fa.(i) <- v);
          subst kb (fun () -> fb.(i)) (fun v -> fb.(i) <- v);
          subst kc (fun () -> fc.(i)) (fun v -> fc.(i) <- v)
        end
      done;
      !changed
    in
    (* ---- pass: fusion and superinstructions ---- *)
    let fuse_pass () =
      compute_defs ();
      let changed = ref false in
      (* Rewrite instruction i once if a pattern applies.  Reading a
         fused operand's own operands is sound because registers are
         write-once: their values cannot change between the operand's
         definition and i. *)
      let rewrite i =
        let o = op.(i) in
        if o = op_add then begin
          let ja = def fa.(i) and jb = def fb.(i) in
          let try_operand j other =
            if j < 0 || j >= i then false
            else if op.(j) = op_neg then begin
              (* x + (-y) = x - y exactly. *)
              op.(i) <- op_sub;
              let y = fa.(j) in
              fa.(i) <- other;
              fb.(i) <- y;
              true
            end
            else if op.(j) = op_mul then begin
              op.(i) <- op_fma;
              let x = fa.(j) and y = fb.(j) in
              fa.(i) <- x;
              fb.(i) <- y;
              fc.(i) <- other;
              true
            end
            else if
              op.(j) = op_vmul
              && env_clean fa.(j) j i
              && env_clean fb.(j) j i
            then begin
              op.(i) <- op_vmacc;
              let sa = fa.(j) and sb = fb.(j) in
              fa.(i) <- other;
              fb.(i) <- sa;
              fc.(i) <- sb;
              true
            end
            else false
          in
          (* Prefer the right operand: left-folded accumulation chains
             put the fresh product there. *)
          try_operand jb fa.(i) || try_operand ja fb.(i)
        end
        else if o = op_sub then begin
          let jb = def fb.(i) in
          if jb >= 0 && jb < i && op.(jb) = op_neg then begin
            (* x - (-y) = x + y exactly. *)
            op.(i) <- op_add;
            fb.(i) <- fa.(jb);
            true
          end
          else false
        end
        else if o = op_neg then begin
          let ja = def fa.(i) in
          if ja >= 0 && ja < i && op.(ja) = op_neg then begin
            op.(i) <- op_mov;
            fa.(i) <- fa.(ja);
            true
          end
          else false
        end
        else if o = op_mul then begin
          let ja = def fa.(i) and jb = def fb.(i) in
          if
            ja >= 0 && jb >= 0 && ja < i && jb < i
            && op.(ja) = op_ldv && op.(jb) = op_ldv
            && env_clean fa.(ja) ja i
            && env_clean fa.(jb) jb i
          then begin
            op.(i) <- op_vmul;
            let sa = fa.(ja) and sb = fa.(jb) in
            fa.(i) <- sa;
            fb.(i) <- sb;
            true
          end
          else false
        end
        else if o = op_fma then begin
          let ja = def fa.(i) and jb = def fb.(i) in
          if
            ja >= 0 && jb >= 0 && ja < i && jb < i
            && op.(ja) = op_ldv && op.(jb) = op_ldv
            && env_clean fa.(ja) ja i
            && env_clean fa.(jb) jb i
          then begin
            op.(i) <- op_vmacc;
            let sa = fa.(ja) and sb = fa.(jb) in
            fa.(i) <- fc.(i);
            fb.(i) <- sa;
            fc.(i) <- sb;
            true
          end
          else false
        end
        else false
      in
      for i = 0 to n - 1 do
        if live.(i) then
          while rewrite i do
            changed := true
          done
      done;
      !changed
    in
    (* ---- pass: dead-store elimination ---- *)
    let dse_pass () =
      let uses = Array.make p.nregs 0 in
      for i = 0 to n - 1 do
        if live.(i) then iter_reg_reads i (fun r -> uses.(r) <- uses.(r) + 1)
      done;
      let env_read s =
        let found = ref false in
        for i = 0 to n - 1 do
          if live.(i) then begin
            let o = op.(i) in
            if
              (o = op_ldv && fa.(i) = s)
              || (o = op_vmul && (fa.(i) = s || fb.(i) = s))
              || (o = op_vmacc && (fb.(i) = s || fc.(i) = s))
            then found := true
          end
        done;
        !found
      in
      let changed = ref false in
      let deleted = ref true in
      while !deleted do
        deleted := false;
        for i = 0 to n - 1 do
          if live.(i) then begin
            let o = op.(i) in
            if writes_reg o && uses.(dst.(i)) = 0 && dst.(i) <> p.result
            then begin
              live.(i) <- false;
              iter_reg_reads i (fun r -> uses.(r) <- uses.(r) - 1);
              deleted := true;
              changed := true
            end
            else if
              o = op_ste && private_env_slot fc.(i) && not (env_read fc.(i))
            then begin
              (* A task-private CSE temporary every consumer of which
                 was folded away: the store itself is dead. *)
              live.(i) <- false;
              uses.(fa.(i)) <- uses.(fa.(i)) - 1;
              deleted := true;
              changed := true
            end
          end
        done
      done;
      !changed
    in
    (* ---- drive to fixpoint ---- *)
    let rounds = ref 0 in
    let continue_ = ref true in
    while !continue_ && !rounds < 8 do
      incr rounds;
      let c1 = fold_pass () in
      let c2 = copyprop_pass () in
      let c3 = fuse_pass () in
      let c4 = dse_pass () in
      continue_ := c1 || c2 || c3 || c4
    done;
    (* ---- compact: drop dead code, renumber targets/registers/pool ---- *)
    let idx_map = Array.make (n + 1) 0 in
    let m = ref 0 in
    for i = 0 to n - 1 do
      idx_map.(i) <- !m;
      if live.(i) then incr m
    done;
    idx_map.(n) <- !m;
    let n' = !m in
    let reg_map = Array.make p.nregs (-1) in
    let next_reg = ref 0 in
    let map_reg r =
      if reg_map.(r) < 0 then begin
        reg_map.(r) <- !next_reg;
        incr next_reg
      end;
      reg_map.(r)
    in
    let cmap : (int64, int) Hashtbl.t = Hashtbl.create 16 in
    let new_consts = ref [] in
    let nc = ref 0 in
    let map_const ci =
      let x = const_val ci in
      let key = Int64.bits_of_float x in
      match Hashtbl.find_opt cmap key with
      | Some i -> i
      | None ->
          let i = !nc in
          Hashtbl.add cmap key i;
          new_consts := x :: !new_consts;
          incr nc;
          i
    in
    let code = Array.make (n' * stride) 0 in
    let w = ref 0 in
    for i = 0 to n - 1 do
      if live.(i) then begin
        let o = op.(i) in
        let _, ka, kb, kc = field_kinds o in
        let map_field kind v =
          match kind with
          | K_reg -> map_reg v
          | K_const -> map_const v
          | K_target -> idx_map.(v / stride) * stride
          | _ -> v
        in
        let d = if writes_reg o then map_reg dst.(i) else dst.(i) in
        code.(!w) <- o;
        code.(!w + 1) <- d;
        code.(!w + 2) <- map_field ka fa.(i);
        code.(!w + 3) <- map_field kb fb.(i);
        code.(!w + 4) <- map_field kc fc.(i);
        w := !w + stride
      end
    done;
    let result =
      if p.result < 0 then p.result
      else if reg_map.(p.result) >= 0 then reg_map.(p.result)
      else map_reg p.result
    in
    {
      code;
      consts = Array.of_list (List.rev !new_consts);
      nregs = max 1 !next_reg;
      result;
    }
  end
