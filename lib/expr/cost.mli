(** Floating-point operation cost model for expressions.

    The scheduler (paper §3.2.3) predicts per-task execution time from the
    expression it computes; this module supplies that prediction.  Costs are
    expressed in "flop units": an add or multiply is 1, a division 4, and
    transcendental calls carry the typical relative latencies of early-1990s
    RISC libms, which is what matters for reproducing the LPT schedules. *)

type weights = {
  w_add : float;
  w_mul : float;
  w_div : float;
  w_pow : float;  (** general power via exp/log *)
  w_call : Expr.func -> float;
  w_cmp : float;  (** comparison in a conditional *)
}

val default : weights

val flops : ?weights:weights -> Expr.t -> float
(** Worst-case flop count of one evaluation (conditionals count the more
    expensive branch plus the comparison). *)

val flops_mean : ?weights:weights -> Expr.t -> float
(** Like {!flops} but conditionals count the average of both branches; used
    by the semi-dynamic scheduler as the static prior. *)
