(* Register-based, allocation-free expression VM.

   Lowering emits write-once virtual registers: every sub-expression
   gets a fresh register, and only the join register of an [If] is
   written twice (once per branch, by a [Mov]).  Jumps are forward-only.
   Both invariants are what {!Peephole} relies on.

   The interpreter is a tail-recursive loop over immediate-int state
   with direct primitive dispatch; every float lives in a float array or
   an unboxed temporary, so steady-state execution performs zero minor-
   heap allocation.  [Array.unsafe_get]/[unsafe_set] are justified by
   [validate] below, which checks every operand of every instruction
   once at compile time. *)

type program = {
  code : int array;
  consts : float array;
  nregs : int;
  result : int; (* register of the final value, or -1 *)
  env_size : int;
  out_size : int;
  regs : float array; (* scratch register file, length nregs *)
}

type target = To_env of int | To_out of int
type stats = { instrs : int; flops : float; fused : int }

(* The interpreter matches on literal opcodes to get a flat switch;
   keep them in sync with Vm_code's numbering. *)
let () =
  assert (Vm_code.stride = 5);
  assert (
    Vm_code.op_ldc = 0 && Vm_code.op_ldv = 1 && Vm_code.op_ldo = 2
    && Vm_code.op_mov = 3 && Vm_code.op_add = 4 && Vm_code.op_sub = 5
    && Vm_code.op_mul = 6 && Vm_code.op_neg = 7 && Vm_code.op_sqr = 8
    && Vm_code.op_recip = 9 && Vm_code.op_pow = 10 && Vm_code.op_fma = 11
    && Vm_code.op_addk = 12 && Vm_code.op_mulk = 13 && Vm_code.op_call1 = 14
    && Vm_code.op_call2 = 15 && Vm_code.op_vmul = 16 && Vm_code.op_vmacc = 17
    && Vm_code.op_jmp = 18 && Vm_code.op_jnot = 19 && Vm_code.op_ste = 20
    && Vm_code.op_sto = 21)

(* ---- emission ---- *)

type emitter = {
  mutable buf : int array; (* words *)
  mutable len : int; (* in words *)
  mutable next_reg : int;
  mutable consts : float array;
  mutable nconsts : int;
  const_tbl : (int64, int) Hashtbl.t;
}

let new_emitter () =
  {
    buf = Array.make 160 0;
    len = 0;
    next_reg = 0;
    consts = Array.make 16 0.;
    nconsts = 0;
    const_tbl = Hashtbl.create 16;
  }

let emit em op dst a b c =
  if em.len + Vm_code.stride > Array.length em.buf then begin
    let bigger = Array.make (2 * Array.length em.buf) 0 in
    Array.blit em.buf 0 bigger 0 em.len;
    em.buf <- bigger
  end;
  let p = em.len in
  em.buf.(p) <- op;
  em.buf.(p + 1) <- dst;
  em.buf.(p + 2) <- a;
  em.buf.(p + 3) <- b;
  em.buf.(p + 4) <- c;
  em.len <- p + Vm_code.stride

let fresh em =
  let r = em.next_reg in
  em.next_reg <- r + 1;
  r

(* Constant-pool index, deduplicated by bit pattern so -0.0 and 0.0
   stay distinct. *)
let kpool em x =
  let key = Int64.bits_of_float x in
  match Hashtbl.find_opt em.const_tbl key with
  | Some i -> i
  | None ->
      if em.nconsts >= Array.length em.consts then begin
        let bigger = Array.make (2 * Array.length em.consts) 0. in
        Array.blit em.consts 0 bigger 0 em.nconsts;
        em.consts <- bigger
      end;
      let i = em.nconsts in
      em.consts.(i) <- x;
      em.nconsts <- i + 1;
      Hashtbl.add em.const_tbl key i;
      i

(* O(1) variable lookup; first occurrence wins like the historical
   linear scan. *)
let index_of names =
  let tbl = Hashtbl.create (max 16 (2 * Array.length names)) in
  Array.iteri
    (fun i name -> if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name i)
    names;
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some i -> i
    | None -> raise (Eval.Unbound v)

(* Lower an expression; returns the register holding its value.
   Evaluation order matches Eval.eval: operands left to right, an If's
   condition before its taken branch only. *)
let rec lower em index (e : Expr.t) =
  match e with
  | Const x ->
      let r = fresh em in
      emit em Vm_code.op_ldc r 0 0 (kpool em x);
      r
  | Var v ->
      let r = fresh em in
      emit em Vm_code.op_ldv r (index v) 0 0;
      r
  | Add [] -> lower em index Expr.zero
  | Mul [] -> lower em index Expr.one
  | Add (x :: xs) ->
      List.fold_left
        (fun acc y ->
          let ry = lower em index y in
          let r = fresh em in
          emit em Vm_code.op_add r acc ry 0;
          r)
        (lower em index x) xs
  | Mul (x :: xs) ->
      List.fold_left
        (fun acc y ->
          let ry = lower em index y in
          let r = fresh em in
          emit em Vm_code.op_mul r acc ry 0;
          r)
        (lower em index x) xs
  | Pow (b, ex) ->
      let ra = lower em index b in
      let rb = lower em index ex in
      let r = fresh em in
      emit em Vm_code.op_pow r ra rb 0;
      r
  | Call (f, [ x ]) ->
      let rx = lower em index x in
      let r = fresh em in
      emit em Vm_code.op_call1 r rx 0 (Vm_code.prim1_of_func f);
      r
  | Call (f, [ x; y ]) ->
      let rx = lower em index x in
      let ry = lower em index y in
      let r = fresh em in
      emit em Vm_code.op_call2 r rx ry (Vm_code.prim2_of_func f);
      r
  | Call (f, args) ->
      invalid_arg
        (Printf.sprintf "Vm.compile: %s applied to %d arguments"
           (Expr.func_name f) (List.length args))
  | If (c, t, e') ->
      let rl = lower em index c.lhs in
      let rr = lower em index c.rhs in
      let join = fresh em in
      let jnot_at = em.len in
      emit em Vm_code.op_jnot (Vm_code.rel_id c.rel) rl rr (-1);
      let rt = lower em index t in
      emit em Vm_code.op_mov join rt 0 0;
      let jmp_at = em.len in
      emit em Vm_code.op_jmp 0 0 0 (-1);
      em.buf.(jnot_at + 4) <- em.len;
      let re = lower em index e' in
      emit em Vm_code.op_mov join re 0 0;
      em.buf.(jmp_at + 4) <- em.len;
      join

(* ---- validation: every operand checked once, so the interpreter may
   use unsafe array access ---- *)

let validate ~env_size ~out_size (q : Peephole.t) =
  let fail fmt = Printf.ksprintf invalid_arg ("Vm: invalid program: " ^^ fmt) in
  let code = q.code in
  let n = Array.length code in
  if n mod Vm_code.stride <> 0 then fail "code length %d not a multiple of stride" n;
  let pos = ref 0 in
  while !pos < n do
    let p = !pos in
    let o = code.(p) in
    if o < 0 || o >= Vm_code.n_opcodes then fail "opcode %d at %d" o p;
    let kd, ka, kb, kc = Vm_code.field_kinds o in
    let check kind v =
      match kind with
      | Vm_code.K_none -> ()
      | Vm_code.K_reg ->
          if v < 0 || v >= q.nregs then fail "register %d at %d" v p
      | Vm_code.K_env ->
          if v < 0 || v >= env_size then fail "env slot %d at %d" v p
      | Vm_code.K_out ->
          if v < 0 || v >= out_size then fail "out slot %d at %d" v p
      | Vm_code.K_const ->
          if v < 0 || v >= Array.length q.consts then fail "const %d at %d" v p
      | Vm_code.K_prim1 ->
          if v < 0 || v >= Vm_code.prim1_count then fail "prim1 %d at %d" v p
      | Vm_code.K_prim2 ->
          if v < 0 || v >= Vm_code.prim2_count then fail "prim2 %d at %d" v p
      | Vm_code.K_target ->
          (* Forward-only, aligned, may point one past the end. *)
          if v <= p || v > n || v mod Vm_code.stride <> 0 then
            fail "jump target %d at %d" v p
      | Vm_code.K_rel -> if v < 0 || v > 3 then fail "relation %d at %d" v p
    in
    check kd code.(p + 1);
    check ka code.(p + 2);
    check kb code.(p + 3);
    check kc code.(p + 4);
    pos := p + Vm_code.stride
  done;
  if q.result >= q.nregs then fail "result register %d" q.result

let finish ?(optimize = true) ?private_env_slot em ~result ~env_size ~out_size =
  let q =
    {
      Peephole.code = Array.sub em.buf 0 em.len;
      consts = Array.sub em.consts 0 em.nconsts;
      nregs = max 1 em.next_reg;
      result;
    }
  in
  let q = if optimize then Peephole.optimize ?private_env_slot q else q in
  validate ~env_size ~out_size q;
  {
    code = q.code;
    consts = q.consts;
    nregs = q.nregs;
    result = q.result;
    env_size;
    out_size;
    regs = Array.make q.nregs 0.;
  }

let compile ?optimize names e =
  let em = new_emitter () in
  let index = index_of names in
  let r = lower em index e in
  finish ?optimize em ~result:r ~env_size:(Array.length names) ~out_size:0

let compile_stmts ?optimize ?private_env_slot ~out_size names stmts =
  let em = new_emitter () in
  let index = index_of names in
  List.iter
    (fun (e, tgt) ->
      let r = lower em index e in
      match tgt with
      | To_env s -> emit em Vm_code.op_ste 0 r 0 s
      | To_out s -> emit em Vm_code.op_sto 0 r 0 s)
    stmts;
  finish ?optimize ?private_env_slot em ~result:(-1)
    ~env_size:(Array.length names) ~out_size

let compile_epilogue ?optimize ~out_size groups =
  let em = new_emitter () in
  List.iter
    (fun (deriv, slots) ->
      (* Fold from 0. like the closure backend, so results are
         bit-identical (addition is commutative bitwise, so the addk
         strength reduction downstream preserves this). *)
      let acc0 = fresh em in
      emit em Vm_code.op_ldc acc0 0 0 (kpool em 0.);
      let r =
        List.fold_left
          (fun acc s ->
            let rs = fresh em in
            emit em Vm_code.op_ldo rs s 0 0;
            let r = fresh em in
            emit em Vm_code.op_add r acc rs 0;
            r)
          acc0 slots
      in
      emit em Vm_code.op_sto 0 r 0 deriv)
    groups;
  finish ?optimize em ~result:(-1) ~env_size:0 ~out_size

(* ---- interpreter ---- *)

(* The loop is a toplevel function over immediate parameters — a local
   recursive function would capture its six arrays in a closure and
   allocate it on every call. *)
let rec loop code consts regs env out stop pc =
  if pc < stop then begin
      let op = Array.unsafe_get code pc in
      let d = Array.unsafe_get code (pc + 1) in
      let a = Array.unsafe_get code (pc + 2) in
      let b = Array.unsafe_get code (pc + 3) in
      let c = Array.unsafe_get code (pc + 4) in
      match op with
      | 0 (* ldc *) ->
          Array.unsafe_set regs d (Array.unsafe_get consts c);
          loop code consts regs env out stop (pc + 5)
      | 1 (* ldv *) ->
          Array.unsafe_set regs d (Array.unsafe_get env a);
          loop code consts regs env out stop (pc + 5)
      | 2 (* ldo *) ->
          Array.unsafe_set regs d (Array.unsafe_get out a);
          loop code consts regs env out stop (pc + 5)
      | 3 (* mov *) ->
          Array.unsafe_set regs d (Array.unsafe_get regs a);
          loop code consts regs env out stop (pc + 5)
      | 4 (* add *) ->
          Array.unsafe_set regs d
            (Array.unsafe_get regs a +. Array.unsafe_get regs b);
          loop code consts regs env out stop (pc + 5)
      | 5 (* sub *) ->
          Array.unsafe_set regs d
            (Array.unsafe_get regs a -. Array.unsafe_get regs b);
          loop code consts regs env out stop (pc + 5)
      | 6 (* mul *) ->
          Array.unsafe_set regs d
            (Array.unsafe_get regs a *. Array.unsafe_get regs b);
          loop code consts regs env out stop (pc + 5)
      | 7 (* neg *) ->
          Array.unsafe_set regs d (-.Array.unsafe_get regs a);
          loop code consts regs env out stop (pc + 5)
      | 8 (* sqr *) ->
          let x = Array.unsafe_get regs a in
          Array.unsafe_set regs d (x *. x);
          loop code consts regs env out stop (pc + 5)
      | 9 (* recip *) ->
          Array.unsafe_set regs d (1. /. Array.unsafe_get regs a);
          loop code consts regs env out stop (pc + 5)
      | 10 (* pow *) ->
          Array.unsafe_set regs d
            (Expr.eval_pow (Array.unsafe_get regs a) (Array.unsafe_get regs b));
          loop code consts regs env out stop (pc + 5)
      | 11 (* fma *) ->
          (* Two rounded operations, matching Eval.eval — not a hardware
             fused multiply-add. *)
          Array.unsafe_set regs d
            ((Array.unsafe_get regs a *. Array.unsafe_get regs b)
            +. Array.unsafe_get regs c);
          loop code consts regs env out stop (pc + 5)
      | 12 (* addk *) ->
          Array.unsafe_set regs d
            (Array.unsafe_get regs a +. Array.unsafe_get consts c);
          loop code consts regs env out stop (pc + 5)
      | 13 (* mulk *) ->
          Array.unsafe_set regs d
            (Array.unsafe_get regs a *. Array.unsafe_get consts c);
          loop code consts regs env out stop (pc + 5)
      | 14 (* call1 *) ->
          let x = Array.unsafe_get regs a in
          (match c with
          | 0 -> Array.unsafe_set regs d (Float.sin x)
          | 1 -> Array.unsafe_set regs d (Float.cos x)
          | 2 -> Array.unsafe_set regs d (Float.tan x)
          | 3 -> Array.unsafe_set regs d (Float.asin x)
          | 4 -> Array.unsafe_set regs d (Float.acos x)
          | 5 -> Array.unsafe_set regs d (Float.atan x)
          | 6 -> Array.unsafe_set regs d (Float.sinh x)
          | 7 -> Array.unsafe_set regs d (Float.cosh x)
          | 8 -> Array.unsafe_set regs d (Float.tanh x)
          | 9 -> Array.unsafe_set regs d (Float.exp x)
          | 10 -> Array.unsafe_set regs d (Float.log x)
          | 11 -> Array.unsafe_set regs d (Float.sqrt x)
          | 12 -> Array.unsafe_set regs d (Float.abs x)
          | _ (* 13: sign *) ->
              Array.unsafe_set regs d
                (if x > 0. then 1. else if x < 0. then -1. else 0.));
          loop code consts regs env out stop (pc + 5)
      | 15 (* call2 *) ->
          let x = Array.unsafe_get regs a in
          let y = Array.unsafe_get regs b in
          (match c with
          | 0 -> Array.unsafe_set regs d (Float.atan2 x y)
          | 1 ->
              (* Float.min semantics, inlined: the stdlib function is
                 not flagged [@@noalloc] and would box at the call. *)
              Array.unsafe_set regs d
                (if x <> x then x
                 else if y <> y then y
                 else if x < y then x
                 else if y < x then y
                 else if x = 0. && 1. /. x < 0. then x
                 else y)
          | 2 ->
              (* Float.max semantics, inlined. *)
              Array.unsafe_set regs d
                (if x <> x then x
                 else if y <> y then y
                 else if x < y then y
                 else if y < x then x
                 else if x = 0. && 1. /. x < 0. then y
                 else x)
          | _ (* 3: hypot *) -> Array.unsafe_set regs d (Float.hypot x y));
          loop code consts regs env out stop (pc + 5)
      | 16 (* vmul *) ->
          Array.unsafe_set regs d
            (Array.unsafe_get env a *. Array.unsafe_get env b);
          loop code consts regs env out stop (pc + 5)
      | 17 (* vmacc *) ->
          Array.unsafe_set regs d
            (Array.unsafe_get regs a
            +. (Array.unsafe_get env b *. Array.unsafe_get env c));
          loop code consts regs env out stop (pc + 5)
      | 18 (* jmp *) -> loop code consts regs env out stop c
      | 19 (* jnot *) ->
          let x = Array.unsafe_get regs a in
          let y = Array.unsafe_get regs b in
          let holds =
            match d with
            | 0 -> x < y
            | 1 -> x <= y
            | 2 -> x > y
            | _ -> x >= y
          in
          if holds then loop code consts regs env out stop (pc + 5)
          else loop code consts regs env out stop c
      | 20 (* ste *) ->
          Array.unsafe_set env c (Array.unsafe_get regs a);
          loop code consts regs env out stop (pc + 5)
      | _ (* 21: sto *) ->
          Array.unsafe_set out c (Array.unsafe_get regs a);
          loop code consts regs env out stop (pc + 5)
    end

(* The code, constant pool and metadata are immutable after [finish];
   only [regs] is written during execution.  Sharing everything but the
   register file therefore yields an independently runnable program for
   a few words plus [nregs] floats — the per-executor cloning primitive
   the serve layer builds on. *)
let clone_scratch p = { p with regs = Array.make p.nregs 0. }

let exec p ~env ~out =
  if Array.length env < p.env_size then invalid_arg "Vm.exec: env too small";
  if Array.length out < p.out_size then invalid_arg "Vm.exec: out too small";
  loop p.code p.consts p.regs env out (Array.length p.code) 0

let no_out = [||]

let[@inline] run p env =
  if p.result < 0 then invalid_arg "Vm.run: statement program (use exec)";
  exec p ~env ~out:no_out;
  Array.unsafe_get p.regs p.result

(* ---- raw view ---- *)

type raw = {
  rw_code : int array;
  rw_consts : float array;
  rw_nregs : int;
  rw_result : int;
  rw_env_size : int;
  rw_out_size : int;
}

let raw p =
  {
    rw_code = p.code;
    rw_consts = p.consts;
    rw_nregs = p.nregs;
    rw_result = p.result;
    rw_env_size = p.env_size;
    rw_out_size = p.out_size;
  }

(* ---- inspection ---- *)

let length p = Array.length p.code / Vm_code.stride
let reg_count p = p.nregs
let result_reg p = p.result
let instructions p = Vm_code.decode p.code p.consts

let disassemble p =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i ins ->
      Buffer.add_string b
        (Printf.sprintf "%4d  %s\n"
           (i * Vm_code.stride)
           (Format.asprintf "%a" Vm_code.pp_instr ins)))
    (instructions p);
  Buffer.contents b

let stats p =
  let n = length p in
  let flops = ref 0. in
  let fused = ref 0 in
  for i = 0 to n - 1 do
    let pos = i * Vm_code.stride in
    flops := !flops +. Vm_code.flop_weight p.code pos;
    if Vm_code.is_fused p.code.(pos) then incr fused
  done;
  { instrs = n; flops = !flops; fused = !fused }
