(** Symbolic mathematical expressions.

    This is the term language shared by the whole ObjectMath reproduction:
    the modelling-language frontend elaborates into it, the code generator
    rewrites it, and the ODE solvers evaluate it.  The representation follows
    Mathematica's convention of n-ary [Plus]/[Times] with [Power] so that
    negation and division are derived forms; this keeps simplification and
    common-subexpression elimination canonical.

    Smart constructors ({!add}, {!mul}, ...) perform light normalisation:
    flattening of nested sums/products, constant folding, identity and
    absorbing-element elimination, and canonical argument ordering.  Deeper
    rewriting lives in {!Simplify}. *)

(** Primitive functions available in models.  [Atan2], [Min], [Max] and
    [Hypot] are binary; everything else is unary. *)
type func =
  | Sin
  | Cos
  | Tan
  | Asin
  | Acos
  | Atan
  | Sinh
  | Cosh
  | Tanh
  | Exp
  | Log
  | Sqrt
  | Abs
  | Sign
  | Atan2
  | Min
  | Max
  | Hypot

(** Comparison relations used in piecewise expressions. *)
type rel = Lt | Le | Gt | Ge

type t = private
  | Const of float
  | Var of string
  | Add of t list  (** n-ary sum; invariant: >= 2 args, flattened, sorted *)
  | Mul of t list  (** n-ary product; same invariants as [Add] *)
  | Pow of t * t
  | Call of func * t list
  | If of cond * t * t
      (** [If (c, a, b)] evaluates [a] when [c] holds, else [b]. *)

and cond = { lhs : t; rel : rel; rhs : t }

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

(** {1 Constructors} *)

val const : float -> t
val int : int -> t
val var : string -> t

val zero : t
val one : t
val two : t
val minus_one : t
val pi : t

val add : t list -> t
val sub : t -> t -> t
val mul : t list -> t
val neg : t -> t
val div : t -> t -> t
val pow : t -> t -> t
val powi : t -> int -> t
val sqr : t -> t
val call : func -> t list -> t

val sin : t -> t
val cos : t -> t
val tan : t -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val abs : t -> t
val sign : t -> t
val atan2 : t -> t -> t
val hypot : t -> t -> t
val min_e : t -> t -> t
val max_e : t -> t -> t

val if_ : cond -> t -> t -> t
val cond : t -> rel -> t -> cond

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ** ) : t -> int -> t
val ( ~- ) : t -> t

(** {1 Inspection} *)

val is_const : t -> bool
val const_value : t -> float option

val children : t -> t list
(** Immediate sub-expressions, including those inside conditions. *)

val map_children : (t -> t) -> t -> t
(** Rebuild a node with every immediate child transformed by [f]; smart
    constructors re-normalise the result. *)

val map_exact : (t -> t option) -> t -> t
(** [map_exact f e] replaces every subtree [s] (pre-order, outermost
    first) for which [f s = Some s'] by [s'], rebuilding the spine with
    the {e raw} constructors so operand order is preserved exactly.
    Unlike {!map_children}, no re-normalisation happens: the n-ary
    [Add]/[Mul] operand lists keep their order, so a left-to-right float
    fold over the result associates exactly as in the input — which
    bitwise-reproducibility passes (e.g. CSE temp extraction) depend on.
    The caller must ensure replacements keep the canonical form
    downstream consumers expect (e.g. no [Add] directly under [Add]). *)

val map_exact_children : (t -> t option) -> t -> t
(** Like {!map_exact} but never replaces the root node itself, only
    (transitively) its children — used to rewrite a definition of a
    subtree without collapsing it to its own name. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every node of the expression tree. *)

val vars : t -> string list
(** Free variables, sorted, without duplicates. *)

val mem_var : string -> t -> bool
val size : t -> int
val depth : t -> int

val func_name : func -> string
val func_arity : func -> int
val func_of_name : string -> func option
val rel_name : rel -> string

val eval_func : func -> float list -> float
(** Apply a primitive function to numeric arguments.
    @raise Invalid_argument on arity mismatch. *)

val eval_rel : rel -> float -> float -> bool

val eval_pow : float -> float -> float
(** The power semantics shared by {e every} evaluator in the repo — the
    tree-walking interpreter, the compiled closures, the register and
    stack VMs, the dynamic cost model, and constant folding.  Integer
    exponents that the peephole pass strength-reduces get the same fast
    paths here ([b ** 2.] is [b *. b], [b ** -1.] is [1. /. b],
    [b ** 1.] is [b], [b ** 0.] is [1.]); everything else is
    [Float.pow].  libm's [pow] is not correctly rounded for all inputs,
    so routing each strategy through this one function is what makes
    optimised and unoptimised code bit-identical. *)

val pp : t Fmt.t
(** Infix rendering, suitable for reading; see {!Prefix_form} for the
    precise backend-oriented interchange printer. *)
