(** Symbolic differentiation. *)

val diff : string -> Expr.t -> Expr.t
(** [diff v e] is the partial derivative de/dv.  Piecewise expressions are
    differentiated branch-wise (the condition is treated as constant), which
    matches the convention of equation-based modelling tools.  [Abs], [Sign],
    [Min] and [Max] are differentiated piecewise as well. *)

val gradient : string list -> Expr.t -> (string * Expr.t) list
(** Partial derivative with respect to each given variable. *)
