type instr =
  | Push of float
  | Load of int
  | Add_n of int
  | Mul_n of int
  | Pow_op
  | Call_f of Expr.func
  | Jump of int
  | Jump_if_not of Expr.rel * int

type program = {
  code : instr array;
  stack_size : int;
}

let compile names e =
  (* Pre-built slot table: O(1) per variable instead of a linear scan.
     First occurrence wins, matching the historical left-to-right
     search. *)
  let slots = Hashtbl.create (max 16 (2 * Array.length names)) in
  Array.iteri
    (fun i name -> if not (Hashtbl.mem slots name) then Hashtbl.add slots name i)
    names;
  let index v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None -> raise (Eval.Unbound v)
  in
  (* Growable emission buffer: [If] placeholders are back-patched in
     place, so compilation is linear in the instruction count. *)
  let buf = ref (Array.make 64 Pow_op) in
  let n = ref 0 in
  let emit i =
    if !n >= Array.length !buf then begin
      let bigger = Array.make (2 * Array.length !buf) Pow_op in
      Array.blit !buf 0 bigger 0 !n;
      buf := bigger
    end;
    !buf.(!n) <- i;
    incr n
  in
  (* Emit instructions; returns the maximum stack depth the fragment
     needs, given that it starts from an empty local context and leaves
     exactly one value. *)
  let rec go (e : Expr.t) =
    match e with
    | Const x ->
        emit (Push x);
        1
    | Var v ->
        emit (Load (index v));
        1
    | Add xs -> nary (fun k -> Add_n k) xs
    | Mul xs -> nary (fun k -> Mul_n k) xs
    | Pow (b, ex) ->
        let d1 = go b in
        let d2 = go ex in
        emit Pow_op;
        max d1 (1 + d2)
    | Call (f, args) ->
        let depth =
          List.fold_left
            (fun (i, acc) a ->
              let d = go a in
              (i + 1, max acc (i + d)))
            (0, 0) args
          |> snd
        in
        emit (Call_f f);
        max 1 depth
    | If (c, t, e') ->
        let d1 = go c.lhs in
        let d2 = go c.rhs in
        (* Placeholder jump, patched after the then-branch. *)
        let jz_at = !n in
        emit (Jump_if_not (c.rel, -1));
        let d3 = go t in
        let jmp_at = !n in
        emit (Jump (-1));
        let else_at = !n in
        let d4 = go e' in
        let end_at = !n in
        !buf.(jz_at) <- Jump_if_not (c.rel, else_at);
        !buf.(jmp_at) <- Jump end_at;
        max (max d1 (1 + d2)) (max d3 d4)
  and nary make xs =
    let k = List.length xs in
    let depth =
      List.fold_left
        (fun (i, acc) a ->
          let d = go a in
          (i + 1, max acc (i + d)))
        (0, 0) xs
      |> snd
    in
    emit (make k);
    max 1 depth
  in
  let depth = go e in
  { code = Array.sub !buf 0 !n; stack_size = max 1 depth }

let length p = Array.length p.code
let max_stack p = p.stack_size
let instructions p = Array.copy p.code

let run p env =
  let stack = Array.make p.stack_size 0. in
  let sp = ref 0 in
  let push v =
    stack.(!sp) <- v;
    incr sp
  in
  let pc = ref 0 in
  let code = p.code in
  let n = Array.length code in
  while !pc < n do
    (match code.(!pc) with
    | Push x ->
        push x;
        incr pc
    | Load i ->
        push env.(i);
        incr pc
    | Add_n k ->
        let acc = ref 0. in
        for _ = 1 to k do
          decr sp;
          acc := !acc +. stack.(!sp)
        done;
        push !acc;
        incr pc
    | Mul_n k ->
        let acc = ref 1. in
        for _ = 1 to k do
          decr sp;
          acc := !acc *. stack.(!sp)
        done;
        push !acc;
        incr pc
    | Pow_op ->
        decr sp;
        let e = stack.(!sp) in
        decr sp;
        let b = stack.(!sp) in
        push (Expr.eval_pow b e);
        incr pc
    | Call_f f ->
        let arity = Expr.func_arity f in
        sp := !sp - arity;
        let args = List.init arity (fun i -> stack.(!sp + i)) in
        push (Expr.eval_func f args);
        incr pc
    | Jump target -> pc := target
    | Jump_if_not (rel, target) ->
        decr sp;
        let rhs = stack.(!sp) in
        decr sp;
        let lhs = stack.(!sp) in
        if Expr.eval_rel rel lhs rhs then incr pc else pc := target)
  done;
  stack.(!sp - 1)

let disassemble p =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i instr ->
      Buffer.add_string buf
        (Printf.sprintf "%4d  %s\n" i
           (match instr with
           | Push x -> Printf.sprintf "push  %g" x
           | Load s -> Printf.sprintf "load  [%d]" s
           | Add_n k -> Printf.sprintf "add   x%d" k
           | Mul_n k -> Printf.sprintf "mul   x%d" k
           | Pow_op -> "pow"
           | Call_f f -> Printf.sprintf "call  %s" (Expr.func_name f)
           | Jump t -> Printf.sprintf "jmp   %d" t
           | Jump_if_not (r, t) ->
               Printf.sprintf "jnot  %s %d" (Expr.rel_name r) t)))
    p.code;
  Buffer.contents buf
