(** Cooperative cancellation tokens with wall-clock deadlines.

    A token is shared between the thread that owns a running integration
    and any thread that wants to stop it: the owner polls {!check} at a
    natural safe point (the runtime polls once per RHS round), the other
    side flips the flag with {!cancel} — or nobody does, and an armed
    deadline expires on its own.  Both outcomes surface as the
    non-retryable {!Om_error.t} constructors ({!Om_error.Cancelled},
    {!Om_error.Deadline_exceeded}), so the solvers abort immediately
    instead of entering their backoff ladder
    ({!Om_error.retryable}), and a server can map the fault to a
    per-job status record.

    Tokens are safe to share across domains: the cancellation flag is an
    [Atomic.t], and the deadline is immutable after {!create}. *)

type t

val create : ?deadline_s:float -> ?now:(unit -> float) -> job:string -> unit -> t
(** A token for [job] (a free-form label quoted in the fault).
    [deadline_s] arms a wall-clock deadline that many seconds after the
    call ([0.], the default, leaves it disarmed).  [now] overrides the
    clock (default [Unix.gettimeofday]) — tests use it to expire
    deadlines deterministically.
    @raise Invalid_argument if [deadline_s < 0.]. *)

val job : t -> string

val cancel : ?reason:string -> t -> unit
(** Request cancellation (default [reason] is ["cancelled by client"]).
    Idempotent; the first reason wins.  The running side observes it at
    its next {!check}. *)

val cancelled : t -> bool
(** Whether {!cancel} has been called.  Does {e not} consult the
    deadline — use {!expired} or {!check} for that. *)

val expired : t -> bool
(** Whether the armed deadline has passed ([false] when disarmed). *)

val deadline_s : t -> float option
(** The armed deadline in seconds after creation, if any. *)

val remaining_s : t -> float option
(** Seconds until the deadline expires (negative once overdue); [None]
    when disarmed. *)

val check : t -> unit
(** The polling point: returns unless the token was cancelled or its
    deadline expired.
    @raise Om_error.Error ([Cancelled]) after {!cancel};
    @raise Om_error.Error ([Deadline_exceeded]) past the deadline. *)
