(** Deterministic, seeded fault injection for the parallel RHS runtime.

    A plan is a small set of faults, each firing {e at most once} when
    its coordinates (round index plus task or worker id) match an
    instrumented execution point.  [Om_parallel.Par_exec] consults the
    plan inside worker jobs (task poisoning, worker delays) and at pool
    construction (spawn failures); the firing counter surfaces as
    [Runtime.report.faults_injected] so tests can assert the chaos they
    asked for actually happened.

    Queries are allocation-free scans over the fault array, so an
    instrumented round stays on the zero-allocation fast path; an
    executor built without a plan carries no instrumentation at all.
    Each query consumes at most one matching fault, so duplicate
    coordinates fire on successive queries (two [Fail_spawn] entries on
    worker 0 fail two rungs of the degradation ladder). *)

type fault =
  | Nan_task of { task : int; round : int }
      (** overwrite the output slots of [task] with NaN after it runs in
          round [round] *)
  | Inf_task of { task : int; round : int }  (** same, with +inf *)
  | Delay_worker of { worker : int; round : int; micros : int }
      (** busy-delay [worker] by [micros] after its tasks in [round] —
          trips the pool's barrier deadline when one is configured *)
  | Fail_spawn of { worker : int }
      (** make pool construction fail for this worker id, as if
          [Domain.spawn] had failed *)

type t

val make : fault list -> t

val seeded : seed:int -> ntasks:int -> nworkers:int -> max_round:int -> t
(** One recoverable fault (NaN/Inf poison or a worker delay) drawn
    deterministically from [seed]; rounds land in [1..max_round]. *)

val faults : t -> fault list

val injected : t -> int
(** How many faults have fired so far. *)

val task_poison : t -> round:int -> task:int -> float
(** The poison value ([nan] or [+inf]) if an unfired task fault matches,
    else [0.] (never a legal poison value, so test with [p <> 0.]).
    Marks the fault fired. *)

val delay_micros : t -> round:int -> worker:int -> int
(** Microseconds of injected delay for this worker/round ([0] if none).
    Marks the fault fired. *)

val spawn_should_fail : t -> worker:int -> bool
(** Whether pool construction must fail for this worker id.  Marks the
    fault fired. *)

val pp_fault : fault Fmt.t
val pp : t Fmt.t
