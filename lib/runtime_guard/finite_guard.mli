(** Allocation-free finite check over an RHS output vector.

    One NaN produced by one task would otherwise flow silently through
    the reduction epilogue into the solver's error estimator and poison
    the whole trajectory (LSODA's weighted-RMS norm turns NaN into a
    NaN step size).  The guard scans the derivative vector after every
    round — a subtraction and a compare per slot, no allocation — and
    raises a typed {!Om_error.Nonfinite_output} attributing the first
    offending slot to its flattened equation name, which the solvers
    catch and answer with step-size backoff. *)

type t

val create : names:string array -> dim:int -> t
(** [names.(i)] is the flattened state name of slot [i] (only the first
    [dim] entries are consulted).
    @raise Invalid_argument if [names] is shorter than [dim]. *)

val dim : t -> int

val check : t -> time:float -> float array -> unit
(** Scan the first [dim] slots; allocation-free when all are finite.
    @raise Om_error.Error ([Nonfinite_output]) on the first bad slot. *)

val wrap :
  t ->
  (float -> float array -> float array -> unit) ->
  float ->
  float array ->
  float array ->
  unit
(** [wrap t f] is [f] followed by {!check} — a guarded drop-in for any
    [rhs_fn]-shaped function. *)
