(* Deterministic fault injection: a small list of faults, each firing at
   most once when its (round, task/worker) coordinates match.  Queries
   run on the hot path of an instrumented round, so they are plain
   array scans over a handful of entries with no allocation. *)

type fault =
  | Nan_task of { task : int; round : int }
  | Inf_task of { task : int; round : int }
  | Delay_worker of { worker : int; round : int; micros : int }
  | Fail_spawn of { worker : int }

type t = {
  faults : fault array;
  fired : bool array;
  mutable injected : int;
}

let make faults =
  let faults = Array.of_list faults in
  { faults; fired = Array.make (Array.length faults) false; injected = 0 }

let faults t = Array.to_list t.faults
let injected t = t.injected

let fire t i =
  t.fired.(i) <- true;
  t.injected <- t.injected + 1

(* One seeded fault, reproducible from the integer seed alone.  The
   chaos fuzz oracle draws one per generated model; every kind must be
   recoverable without changing the trajectory, so the generator only
   picks faults the runtime can mask (NaN/Inf task output, a worker
   delay long enough to trip the barrier deadline). *)
let seeded ~seed ~ntasks ~nworkers ~max_round =
  let st = Random.State.make [| 0x0c4a05; seed |] in
  let round = 1 + Random.State.int st (max 1 max_round) in
  match Random.State.int st 3 with
  | 0 -> make [ Nan_task { task = Random.State.int st (max 1 ntasks); round } ]
  | 1 -> make [ Inf_task { task = Random.State.int st (max 1 ntasks); round } ]
  | _ ->
      make
        [
          Delay_worker
            {
              worker = Random.State.int st (max 1 nworkers);
              round;
              micros = 2_000 + Random.State.int st 4_000;
            };
        ]

(* Hot-path queries.  The float-returning ones use 0. as "no fault":
   the only values ever injected are nan and +inf, both of which compare
   unequal to 0. (nan compares unequal to everything), so callers test
   [p <> 0.] without boxing an option.

   Each query consumes at most ONE matching fault, so a plan listing the
   same coordinates twice fires on two separate queries — e.g. two
   [Fail_spawn] entries on worker 0 fail two successive rungs of the
   degradation ladder, which re-checks worker ids from 0. *)

let task_poison t ~round ~task =
  let n = Array.length t.faults in
  let p = ref 0. in
  for i = 0 to n - 1 do
    if !p = 0. && not t.fired.(i) then
      match t.faults.(i) with
      | Nan_task f when f.task = task && f.round = round ->
          fire t i;
          p := Float.nan
      | Inf_task f when f.task = task && f.round = round ->
          fire t i;
          p := Float.infinity
      | Nan_task _ | Inf_task _ | Delay_worker _ | Fail_spawn _ -> ()
  done;
  !p

let delay_micros t ~round ~worker =
  let n = Array.length t.faults in
  let d = ref 0 in
  for i = 0 to n - 1 do
    if !d = 0 && not t.fired.(i) then
      match t.faults.(i) with
      | Delay_worker f when f.worker = worker && f.round = round ->
          fire t i;
          d := f.micros
      | Nan_task _ | Inf_task _ | Delay_worker _ | Fail_spawn _ -> ()
  done;
  !d

let spawn_should_fail t ~worker =
  let n = Array.length t.faults in
  let hit = ref false in
  for i = 0 to n - 1 do
    if (not !hit) && not t.fired.(i) then
      match t.faults.(i) with
      | Fail_spawn f when f.worker = worker ->
          fire t i;
          hit := true
      | Nan_task _ | Inf_task _ | Delay_worker _ | Fail_spawn _ -> ()
  done;
  !hit

let pp_fault ppf = function
  | Nan_task { task; round } ->
      Fmt.pf ppf "nan into task %d at round %d" task round
  | Inf_task { task; round } ->
      Fmt.pf ppf "inf into task %d at round %d" task round
  | Delay_worker { worker; round; micros } ->
      Fmt.pf ppf "delay worker %d by %dus at round %d" worker micros round
  | Fail_spawn { worker } -> Fmt.pf ppf "fail spawn of worker %d" worker

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.array ~sep:Fmt.cut pp_fault) t.faults
