type t = {
  job : string;
  reason : string option Atomic.t;  (* [Some r] once cancelled *)
  deadline_s : float;  (* relative seconds; 0. = disarmed *)
  t0 : float;
  now : unit -> float;
}

let create ?(deadline_s = 0.) ?(now = Unix.gettimeofday) ~job () =
  if deadline_s < 0. then invalid_arg "Cancel.create: negative deadline";
  { job; reason = Atomic.make None; deadline_s; t0 = now (); now }

let job t = t.job

let cancel ?(reason = "cancelled by client") t =
  ignore (Atomic.compare_and_set t.reason None (Some reason))

let cancelled t = Atomic.get t.reason <> None
let elapsed t = t.now () -. t.t0
let armed t = t.deadline_s > 0.
let expired t = armed t && elapsed t > t.deadline_s
let deadline_s t = if armed t then Some t.deadline_s else None
let remaining_s t = if armed t then Some (t.deadline_s -. elapsed t) else None

let check t =
  match Atomic.get t.reason with
  | Some reason -> Om_error.(error (Cancelled { job = t.job; reason }))
  | None ->
      if armed t then begin
        let elapsed_s = elapsed t in
        if elapsed_s > t.deadline_s then
          Om_error.(
            error
              (Deadline_exceeded
                 { job = t.job; deadline_s = t.deadline_s; elapsed_s }))
      end
