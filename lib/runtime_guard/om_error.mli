(** Structured runtime-fault taxonomy for the parallel RHS runtime.

    The supervisor/worker scheme calls the generated RHS at every solver
    step; on real machines those rounds fail in structured ways — a task
    produces a NaN, a worker stalls past the round barrier, a domain
    fails to spawn, a solver step blows its retry budget.  Ad-hoc
    [Failure]/[Invalid_argument] strings cannot be matched on by the
    recovery policies (step-size backoff in the solvers, the degradation
    ladder in [Om_parallel.Par_exec]), so every recoverable fault is one
    constructor of {!t} carried by the single exception {!Error}.

    [Invalid_argument] remains in use across the codebase for
    programmer-contract violations (wrong array lengths, out-of-range
    ids); {!t} covers the faults that occur on a {e correct} program run
    on imperfect hardware or with injected chaos
    ([Om_guard.Fault_plan]). *)

type t =
  | Nonfinite_output of {
      slot : int;  (** state slot of the offending derivative *)
      equation : string;  (** flattened equation name, e.g. [der(p.theta)] *)
      value : float;  (** the non-finite value (nan or ±inf) *)
      time : float;  (** solver time of the failing RHS evaluation *)
    }
      (** Raised by {!Om_guard.Finite_guard} when a post-round scan finds
          a non-finite derivative.  Solvers catch this and retry with
          step-size backoff. *)
  | Worker_stall of { worker : int; round : int; waited_s : float }
      (** A worker failed to reach the round barrier before the
          configured deadline.  Recorded as the cause of a degradation
          event when the runtime drops the worker. *)
  | Spawn_failure of { worker : int; nworkers : int; reason : string }
      (** [Domain.spawn] failed (or was failed by injection) while
          building a pool.  The runtime degrades to fewer workers. *)
  | Barrier_timeout of { round : int; missing : int; deadline_s : float }
      (** A round barrier expired with [missing] workers outstanding and
          no single worker attributable. *)
  | Worker_exception of { worker : int; round : int; detail : string }
      (** A worker's job raised; the exception was contained on the
          worker (the domain keeps serving rounds, so the pool still
          joins cleanly) and re-raised on the supervisor. *)
  | Newton_failure of { time : float; iterations : int }
      (** The modified-Newton corrector of an implicit stage failed to
          converge; stiff solvers catch this and shrink the step. *)
  | Step_failure of {
      solver : string;
      time : float;
      step : float;
      retries : int;
      reason : string;  (** rendered root cause, names the equation when
                            the fault was a guarded non-finite output *)
    }
      (** A solver exhausted its retry budget (or its global step
          budget).  Terminal: integration cannot proceed. *)
  | Cancelled of { job : string; reason : string }
      (** The job owning this integration was cancelled from outside
          (an explicit client cancellation through {!Cancel.cancel}).
          Terminal and non-retryable: the solvers re-raise it
          immediately instead of entering the backoff ladder. *)
  | Deadline_exceeded of { job : string; deadline_s : float; elapsed_s : float }
      (** The job's wall-clock deadline expired while the integration was
          running ({!Cancel.check}).  Terminal and non-retryable, like
          {!Cancelled}. *)

exception Error of t

val error : t -> 'a
(** [error e] raises [Error e]. *)

val retryable : t -> bool
(** Whether the solvers' same-step-retry/backoff ladder may answer this
    fault ([true] for runtime faults such as {!Nonfinite_output}), or
    the fault must abort the integration at once ([false] for
    {!Cancelled} and {!Deadline_exceeded} — retrying cannot unexpire a
    deadline). *)

val job_retryable : t -> bool
(** Job-level recovery classification, one level above {!retryable}:
    when an integration has already failed with this fault, is
    re-running the {e whole job} from scratch plausible?  [true] for
    transient infrastructure faults ({!Worker_stall}, {!Spawn_failure},
    {!Barrier_timeout}, {!Worker_exception}) and for {!Step_failure}
    (the step ladder's summary of an injected or environmental fault
    burst); [false] for deterministic verdicts about the model
    ({!Nonfinite_output}, {!Newton_failure}) and for the terminal
    envelope faults ({!Cancelled}, {!Deadline_exceeded}).  The serve
    layer re-enqueues [job_retryable] failures with exponential backoff
    under a bounded per-job budget. *)

val to_string : t -> string
val pp : t Fmt.t

(** One step down the degradation ladder
    [Real_domains n -> Real_domains (n-1) -> sequential]: which worker
    was dropped, when, why, and how many workers remain ([0] means the
    supervisor now evaluates the RHS itself). *)
type degradation = {
  at_round : int;  (** pool round index when the ladder stepped (0 for
                       spawn-time degradation) *)
  worker : int;  (** the worker removed from the live set *)
  remaining : int;  (** live workers after the step *)
  cause : t;
}

val pp_degradation : degradation Fmt.t
