type t =
  | Nonfinite_output of {
      slot : int;
      equation : string;
      value : float;
      time : float;
    }
  | Worker_stall of { worker : int; round : int; waited_s : float }
  | Spawn_failure of { worker : int; nworkers : int; reason : string }
  | Barrier_timeout of { round : int; missing : int; deadline_s : float }
  | Worker_exception of { worker : int; round : int; detail : string }
  | Newton_failure of { time : float; iterations : int }
  | Step_failure of {
      solver : string;
      time : float;
      step : float;
      retries : int;
      reason : string;
    }
  | Cancelled of { job : string; reason : string }
  | Deadline_exceeded of { job : string; deadline_s : float; elapsed_s : float }

exception Error of t

let error e = raise (Error e)

(* Solvers answer retryable faults with same-step retry then step-size
   backoff; a cancellation or deadline overrun must instead abort the
   integration immediately — retrying cannot unexpire a deadline. *)
let retryable = function
  | Cancelled _ | Deadline_exceeded _ -> false
  | Nonfinite_output _ | Worker_stall _ | Spawn_failure _ | Barrier_timeout _
  | Worker_exception _ | Newton_failure _ | Step_failure _ ->
      true

(* Job-level classification, one level up from the step ladder: when a
   whole integration has failed, is re-running the job from scratch a
   plausible recovery?  Infrastructure faults (stalls, spawn failures,
   worker crashes, barrier overruns) are transient by nature, and a
   [Step_failure] is the step ladder's summary of whatever fault
   exhausted its budget — under chaos injection the next attempt draws a
   fresh plan, so the serve layer re-enqueues these with backoff.
   Deterministic verdicts about the model itself (a non-finite equation,
   a divergent Newton iteration) and the non-retryable envelope faults
   (cancellation, deadline) would fail identically every time. *)
let job_retryable = function
  | Worker_stall _ | Spawn_failure _ | Barrier_timeout _ | Worker_exception _
  | Step_failure _ ->
      true
  | Nonfinite_output _ | Newton_failure _ | Cancelled _ | Deadline_exceeded _
    ->
      false

(* Render the float with %h only when it is non-finite garbage worth
   quoting exactly; %g otherwise keeps messages readable (and stable for
   the cram tests). *)
let value_str v =
  if Float.is_nan v then "nan"
  else if v = Float.infinity then "inf"
  else if v = Float.neg_infinity then "-inf"
  else Printf.sprintf "%g" v

let to_string = function
  | Nonfinite_output { slot; equation; value; time } ->
      Printf.sprintf "non-finite RHS output %s in %s (state slot %d) at t=%g"
        (value_str value) equation slot time
  | Worker_stall { worker; round; waited_s } ->
      Printf.sprintf "worker %d stalled in round %d (waited %.4fs)" worker
        round waited_s
  | Spawn_failure { worker; nworkers; reason } ->
      Printf.sprintf "failed to spawn worker domain %d of %d: %s" worker
        nworkers reason
  | Barrier_timeout { round; missing; deadline_s } ->
      Printf.sprintf
        "round %d barrier timed out after %.4fs with %d worker(s) missing"
        round deadline_s missing
  | Worker_exception { worker; round; detail } ->
      Printf.sprintf "worker %d raised in round %d: %s" worker round detail
  | Newton_failure { time; iterations } ->
      Printf.sprintf "Newton iteration failed to converge at t=%g (%d iters)"
        time iterations
  | Step_failure { solver; time; step; retries; reason } ->
      Printf.sprintf "%s step failed at t=%g (h=%g) after %d retries: %s"
        solver time step retries reason
  | Cancelled { job; reason } ->
      Printf.sprintf "job %s cancelled: %s" job reason
  | Deadline_exceeded { job; deadline_s; elapsed_s } ->
      Printf.sprintf "job %s exceeded its %.3fs deadline (%.3fs elapsed)" job
        deadline_s elapsed_s

let pp ppf e = Fmt.string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Om_guard.Om_error.Error: %s" (to_string e))
    | _ -> None)

type degradation = {
  at_round : int;
  worker : int;
  remaining : int;
  cause : t;
}

let pp_degradation ppf d =
  Fmt.pf ppf "round %d: dropped worker %d -> %s (%a)" d.at_round d.worker
    (if d.remaining = 0 then "sequential"
     else Printf.sprintf "%d live worker(s)" d.remaining)
    pp d.cause
