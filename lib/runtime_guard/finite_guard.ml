(* Allocation-free post-round finite check.

   [x -. x] is 0. exactly when [x] is finite (inf - inf and nan - nan
   are both nan, and nan <> 0.), so the scan costs one subtraction and
   one compare per state slot, touches no heap, and never boxes — the
   guarded fast path stays on the zero-allocation round budget enforced
   by the Gc regression tests.  Attribution (building the flattened
   equation name) only happens on the failure path. *)

type t = { names : string array; dim : int }

let create ~names ~dim =
  if Array.length names < dim then
    invalid_arg "Finite_guard.create: names shorter than dim";
  { names; dim }

let dim t = t.dim

let[@inline] slot_bad v = v -. v <> 0.

let raise_slot t ~time ydot i =
  let value = ydot.(i) in
  Om_error.error
    (Om_error.Nonfinite_output
       { slot = i; equation = "der(" ^ t.names.(i) ^ ")"; value; time })

let check t ~time ydot =
  let n = t.dim in
  for i = 0 to n - 1 do
    if slot_bad (Array.unsafe_get ydot i) then raise_slot t ~time ydot i
  done

let wrap t f =
  fun time y ydot ->
    f time y ydot;
    check t ~time ydot
