let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_line g v =
  Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape (Digraph.label g v))

let edge_lines g =
  Digraph.edges g
  |> List.map (fun (a, b) -> Printf.sprintf "  n%d -> n%d;\n" a b)
  |> String.concat ""

let to_string ?(name = "deps") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box];\n";
  List.iter (fun v -> Buffer.add_string buf (node_line g v)) (Digraph.nodes g);
  Buffer.add_string buf (edge_lines g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let with_components ?(name = "deps") g (comps : Scc.components) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box];\n";
  for k = 0 to comps.count - 1 do
    match comps.members.(k) with
    | [ v ] -> Buffer.add_string buf (node_line g v)
    | members ->
        Buffer.add_string buf
          (Printf.sprintf "  subgraph cluster_%d {\n    label=\"SCC %d\";\n" k k);
        List.iter
          (fun v -> Buffer.add_string buf ("  " ^ node_line g v))
          members;
        Buffer.add_string buf "  }\n"
  done;
  Buffer.add_string buf (edge_lines g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)
