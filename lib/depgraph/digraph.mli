(** Directed graphs over integer node ids with string labels.

    Node ids are dense: [0 .. node_count - 1].  The dependency analysis of
    the paper (§2.1) builds one node per equation/variable and edges from
    used values to produced values. *)

type t

val create : unit -> t

val add_node : t -> string -> int
(** Add a labelled node; returns its id. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g src dst]: duplicate edges are ignored.
    @raise Invalid_argument on unknown ids. *)

val node_count : t -> int
val edge_count : t -> int
val label : t -> int -> string
val succ : t -> int -> int list
val pred : t -> int -> int list
val mem_edge : t -> int -> int -> bool
val nodes : t -> int list
val edges : t -> (int * int) list
val find_node : t -> string -> int option
(** First node carrying the given label, if any. *)

val of_edges : string list -> (string * string) list -> t
(** Build a graph from labelled nodes and label pairs.
    @raise Invalid_argument if an edge mentions an unknown label. *)

val transpose : t -> t
