let in_degrees g =
  let n = Digraph.node_count g in
  let deg = Array.make n 0 in
  List.iter (fun (_, b) -> deg.(b) <- deg.(b) + 1) (Digraph.edges g);
  deg

let sort g =
  let n = Digraph.node_count g in
  let deg = in_degrees g in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) deg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    List.iter
      (fun w ->
        deg.(w) <- deg.(w) - 1;
        if deg.(w) = 0 then Queue.add w queue)
      (Digraph.succ g v)
  done;
  if !seen <> n then invalid_arg "Topo.sort: graph has a cycle";
  List.rev !order

let is_acyclic g =
  match sort g with _ -> true | exception Invalid_argument _ -> false

let layers g =
  let n = Digraph.node_count g in
  let order = sort g in
  let level = Array.make n 0 in
  List.iter
    (fun v ->
      List.iter
        (fun w -> level.(w) <- max level.(w) (level.(v) + 1))
        (Digraph.succ g v))
    order;
  let depth = Array.fold_left max 0 level + if n = 0 then 0 else 1 in
  let buckets = Array.make depth [] in
  List.iter (fun v -> buckets.(level.(v)) <- v :: buckets.(level.(v))) order;
  Array.to_list (Array.map List.rev buckets)

let longest_path g = List.length (layers g)
