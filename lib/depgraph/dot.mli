(** Graphviz DOT emission, the visual counterpart of the paper's Figures 3
    and 6 (dependency graphs with SCCs highlighted as clusters). *)

val to_string : ?name:string -> Digraph.t -> string

val with_components :
  ?name:string -> Digraph.t -> Scc.components -> string
(** Render with one cluster per non-singleton strongly connected
    component. *)

val save : string -> string -> unit
(** [save path dot_text] writes the text to a file. *)
