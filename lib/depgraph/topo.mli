(** Topological ordering and layering of acyclic graphs. *)

val sort : Digraph.t -> int list
(** Kahn's algorithm; nodes before their successors.
    @raise Invalid_argument if the graph has a cycle. *)

val is_acyclic : Digraph.t -> bool

val layers : Digraph.t -> int list list
(** Partition an acyclic graph into levels: layer 0 holds nodes with no
    predecessors, layer k+1 holds nodes whose predecessors all sit in layers
    <= k.  All nodes of a layer may execute in parallel, so the layer count
    is the critical-path length used to bound equation-system-level
    parallelism (paper §2.5.1).
    @raise Invalid_argument if the graph has a cycle. *)

val longest_path : Digraph.t -> int
(** Number of nodes on the longest directed path (critical path). *)
