(** Strongly connected components (Tarjan) and graph condensation.

    This is the analysis of paper §2.1: "the equations are partitioned into
    sets of mutually dependent equations by this algorithm (i.e. separate
    systems of equations) and the reduced, acyclic dependency graph is
    built". *)

type components = {
  count : int;
  comp_of : int array;  (** node id -> component id *)
  members : int list array;  (** component id -> member node ids *)
}

val tarjan : Digraph.t -> components
(** Components are numbered in reverse topological order of the condensation
    (i.e. component 0 has no successors among distinct components).
    Iterative implementation; safe on graphs with tens of thousands of
    nodes. *)

val condensation : Digraph.t -> components -> Digraph.t
(** Reduced acyclic graph: one node per component (labelled with a
    representative member's label plus the member count), edges between
    distinct components, deduplicated. *)

val nontrivial : Digraph.t -> components -> int list
(** Components with more than one node, or a single node with a self
    loop (a genuine equation system rather than a single assignment). *)
