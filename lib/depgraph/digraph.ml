type t = {
  mutable labels : string array;
  mutable out_edges : int list array;
  mutable in_edges : int list array;
  mutable n : int;
  mutable m : int;
  index : (string, int) Hashtbl.t;
}

let create () =
  {
    labels = Array.make 8 "";
    out_edges = Array.make 8 [];
    in_edges = Array.make 8 [];
    n = 0;
    m = 0;
    index = Hashtbl.create 16;
  }

let grow g =
  let cap = Array.length g.labels in
  if g.n >= cap then (
    let cap' = 2 * cap in
    let resize a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    g.labels <- resize g.labels "";
    g.out_edges <- resize g.out_edges [];
    g.in_edges <- resize g.in_edges [])

let add_node g lbl =
  grow g;
  let id = g.n in
  g.labels.(id) <- lbl;
  g.n <- id + 1;
  if not (Hashtbl.mem g.index lbl) then Hashtbl.add g.index lbl id;
  id

let check g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of range" v)

let mem_edge g a b =
  check g a;
  check g b;
  List.mem b g.out_edges.(a)

let add_edge g a b =
  check g a;
  check g b;
  if not (List.mem b g.out_edges.(a)) then (
    g.out_edges.(a) <- b :: g.out_edges.(a);
    g.in_edges.(b) <- a :: g.in_edges.(b);
    g.m <- g.m + 1)

let node_count g = g.n
let edge_count g = g.m

let label g v =
  check g v;
  g.labels.(v)

let succ g v =
  check g v;
  List.rev g.out_edges.(v)

let pred g v =
  check g v;
  List.rev g.in_edges.(v)

let nodes g = List.init g.n Fun.id

let edges g =
  List.concat_map (fun v -> List.map (fun w -> (v, w)) (succ g v)) (nodes g)

let find_node g lbl = Hashtbl.find_opt g.index lbl

let of_edges labels pairs =
  let g = create () in
  List.iter (fun l -> ignore (add_node g l)) labels;
  let resolve l =
    match find_node g l with
    | Some v -> v
    | None -> invalid_arg ("Digraph.of_edges: unknown label " ^ l)
  in
  List.iter (fun (a, b) -> add_edge g (resolve a) (resolve b)) pairs;
  g

let transpose g =
  let g' = create () in
  List.iter (fun v -> ignore (add_node g' (label g v))) (nodes g);
  List.iter (fun (a, b) -> add_edge g' b a) (edges g);
  g'
