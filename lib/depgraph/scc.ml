type components = {
  count : int;
  comp_of : int array;
  members : int list array;
}

(* Iterative Tarjan with an explicit work stack: each frame is (node,
   iterator position into its successor array). *)
let tarjan g =
  let n = Digraph.node_count g in
  let succ = Array.init n (fun v -> Array.of_list (Digraph.succ g v)) in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let comp_of = Array.make n (-1) in
  let comp_members = ref [] in
  let comp_count = ref 0 in
  let work = Stack.create () in
  let start v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    Stack.push (v, ref 0) work
  in
  let finish v =
    (* v is a root: pop its component. *)
    let members = ref [] in
    let continue = ref true in
    while !continue do
      let w = Stack.pop stack in
      on_stack.(w) <- false;
      comp_of.(w) <- !comp_count;
      members := w :: !members;
      if w = v then continue := false
    done;
    comp_members := !members :: !comp_members;
    incr comp_count
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      start root;
      while not (Stack.is_empty work) do
        let v, pos = Stack.top work in
        if !pos < Array.length succ.(v) then begin
          let w = succ.(v).(!pos) in
          incr pos;
          if index.(w) < 0 then start w
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop work);
          if lowlink.(v) = index.(v) then finish v;
          if not (Stack.is_empty work) then begin
            let parent, _ = Stack.top work in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  let members = Array.of_list (List.rev !comp_members) in
  { count = !comp_count; comp_of; members }

let condensation g comps =
  let c = Digraph.create () in
  for k = 0 to comps.count - 1 do
    let rep =
      match comps.members.(k) with
      | v :: _ -> Digraph.label g v
      | [] -> assert false
    in
    let size = List.length comps.members.(k) in
    let lbl = if size = 1 then rep else Printf.sprintf "%s (+%d)" rep (size - 1) in
    ignore (Digraph.add_node c lbl)
  done;
  List.iter
    (fun (a, b) ->
      let ka = comps.comp_of.(a) and kb = comps.comp_of.(b) in
      if ka <> kb then Digraph.add_edge c ka kb)
    (Digraph.edges g);
  c

let nontrivial g comps =
  List.filter
    (fun k ->
      match comps.members.(k) with
      | [ v ] -> Digraph.mem_edge g v v
      | _ :: _ :: _ -> true
      | [] -> false)
    (List.init comps.count Fun.id)
