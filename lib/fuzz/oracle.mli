(** Cross-strategy invariant oracle for generated models.

    {!check} pushes one surface model through the entire pipeline and
    verifies every invariant the compiler's correctness story rests on:

    - {b roundtrip}: [unparse → parse → unparse] is a textual fixpoint
      and the reparsed model flattens identically;
    - {b flatten} / {b typecheck}: a generated (well-typed by
      construction) model flattens without error and typechecks;
    - {b flatten-idempotence}: re-flattening the unparsed flat model
      reproduces it up to the positional renaming of
      {!Om_lang.Unparse.flat_model};
    - {b scc} / {b topo}: Tarjan components partition the dependency
      graph, the condensation is acyclic, preserves cross-component
      edges, and topologically sorts consistently;
    - {b no-split}: the partitioner never splits a generated equation
      (the generator's cost bound guarantees it, and the bitwise
      trajectory matrix depends on it);
    - {b schedule}: LPT on 1/2/4 processors and the semi-dynamic
      rescheduler produce valid schedules — every task exactly once, on
      a processor in range, with consistent loads and makespan;
    - {b jacobian} / {b jacobian-pattern} / {b jacobian-colored}: the
      symbolically derived Jacobian agrees with forward differences
      within the fd truncation tolerance (finite entries only, and
      skipping kinks — min/max/abs ties, detected as forward and
      backward differences disagreeing — where the derivative does not
      exist and the subgradient branch convention legitimately differs
      from a one-sided difference); every
      numerically nonzero fd entry lies inside the declared read-set
      sparsity pattern (the superset property colored compression needs);
      and the colored compressed-column evaluation decompresses to the
      uncompressed forward differences bitwise;
    - {b trajectory}: bitwise ([Int64.bits_of_float]) identity of the
      full RK4 trajectory across the raw-equation interpreter, compiled
      closures, the register VM with and without the peephole pass, the
      simulated machine (with and without semi-dynamic rescheduling),
      and real OCaml domains with 1, 2 and 4 workers including live
      reschedules.

    When the reference trajectory is non-finite (explosive dynamics the
    bounded grammar cannot fully rule out) the trajectory matrix is
    skipped and the case is reported as discarded; every structural
    invariant above still runs.

    With [?chaos:seed], a {b chaos} invariant joins the matrix: one
    fault drawn by {!Om_guard.Fault_plan.seeded} (NaN/Inf poisoned into
    a task output, or a worker delay long enough to trip the barrier
    deadline) is injected into a 2-domain run.  The runtime must mask it
    — guard, retry, or degrade — and still reproduce the fault-free
    reference trajectory bitwise; a plan that injects nothing over the
    whole run is itself a violation. *)

type violation = { invariant : string; detail : string }

val pp_violation : violation Fmt.t

type result = {
  dim : int;  (** flat state dimension, 0 if flattening failed *)
  n_tasks : int;  (** generated task count, 0 if compilation failed *)
  discarded : string option;
      (** set when the trajectory matrix was skipped, with the reason *)
  violations : violation list;  (** empty = all invariants hold *)
}

val check : ?chaos:int -> Om_lang.Ast.model -> result
(** [check ?chaos m] runs every invariant; [chaos] seeds the optional
    fault-injection strategy (see above). *)
