module A = Om_lang.Ast

let drop_nth l n = List.filteri (fun i _ -> i <> n) l
let set_nth l n x = List.mapi (fun i y -> if i = n then x else y) l

let rec subterms (e : A.sexpr) : A.sexpr list =
  let kids =
    match e with
    | A.Snum _ | A.Sname _ -> []
    | A.Sbin (_, a, b) -> [ a; b ]
    | A.Sneg a -> [ a ]
    | A.Scall (_, args) -> args
    | A.Sif (c, a, b) -> [ c.sc_lhs; c.sc_rhs; a; b ]
  in
  kids @ List.concat_map subterms kids

(* Replacements for an expression, simplest first: the unit constant,
   then every proper subterm. *)
let expr_candidates (e : A.sexpr) : A.sexpr list =
  (match e with A.Snum 1. -> [] | _ -> [ A.Snum 1. ]) @ subterms e

let binding_candidates bs ~rebuild =
  List.mapi (fun i _ -> rebuild (drop_nth bs i)) bs
  @ List.concat
      (List.mapi
         (fun i (k, e) ->
           List.map (fun e' -> rebuild (set_nth bs i (k, e'))) (expr_candidates e))
         bs)

let member_candidates (c : A.class_def) ~rebuild =
  let upd i m' = rebuild (set_nth c.A.members i m') in
  List.concat
    (List.mapi
       (fun i (m : A.member) ->
         match m with
         | A.Variable (v, init) ->
             (* Dropping a state drops its equation(s) with it. *)
             rebuild
               (List.filter
                  (function
                    | A.Variable (n, _) | A.Equation (n, _) -> n <> v
                    | _ -> true)
                  c.A.members)
             :: List.map (fun e' -> upd i (A.Variable (v, e'))) (expr_candidates init)
         | A.Parameter (n, e) ->
             rebuild (drop_nth c.A.members i)
             :: List.map (fun e' -> upd i (A.Parameter (n, e'))) (expr_candidates e)
         | A.Alias (n, e) ->
             rebuild (drop_nth c.A.members i)
             :: List.map (fun e' -> upd i (A.Alias (n, e'))) (expr_candidates e)
         | A.Part (n, cls, bs) ->
             rebuild (drop_nth c.A.members i)
             :: binding_candidates bs ~rebuild:(fun bs' ->
                    upd i (A.Part (n, cls, bs')))
         | A.Equation (n, e) ->
             (* Droppable only when it overrides an inherited equation —
                otherwise the model stops flattening and the candidate is
                rejected by the predicate. *)
             rebuild (drop_nth c.A.members i)
             :: List.map (fun e' -> upd i (A.Equation (n, e'))) (expr_candidates e))
       c.A.members)

let candidates (m : A.model) : A.model list =
  let with_instances is = { m with A.instances = is } in
  let with_classes cs = { m with A.classes = cs } in
  let instance_drops =
    if List.length m.A.instances > 1 then
      List.mapi (fun i _ -> with_instances (drop_nth m.A.instances i)) m.A.instances
    else []
  in
  let class_drops =
    if List.length m.A.classes > 1 then
      List.mapi (fun i _ -> with_classes (drop_nth m.A.classes i)) m.A.classes
    else []
  in
  let instance_shrinks =
    List.concat
      (List.mapi
         (fun i (inst : A.instance_def) ->
           let upd inst' = with_instances (set_nth m.A.instances i inst') in
           (match inst.A.range with
           | Some (lo, hi) when hi > lo ->
               [ upd { inst with A.range = Some (lo, hi - 1) } ]
           | Some (_, _) -> [ upd { inst with A.range = None } ]
           | None -> [])
           @ binding_candidates inst.A.ibindings ~rebuild:(fun bs ->
                 upd { inst with A.ibindings = bs }))
         m.A.instances)
  in
  let class_shrinks =
    List.concat
      (List.mapi
         (fun i (c : A.class_def) ->
           let upd c' = with_classes (set_nth m.A.classes i c') in
           (match c.A.parent with
           | Some (p, binds) ->
               upd { c with A.parent = None }
               :: (if binds <> [] then [ upd { c with A.parent = Some (p, []) } ]
                   else [])
           | None -> [])
           @ member_candidates c ~rebuild:(fun ms ->
                 upd { c with A.members = ms }))
         m.A.classes)
  in
  instance_drops @ class_drops @ instance_shrinks @ class_shrinks

let shrink ?(budget = 300) (m : A.model) ~predicate =
  let evals = ref 0 in
  let pred m' =
    if !evals >= budget then false
    else begin
      incr evals;
      match predicate m' with v -> v | exception _ -> false
    end
  in
  let rec go m = match List.find_opt pred (candidates m) with
    | Some m' -> go m'
    | None -> m
  in
  go m
