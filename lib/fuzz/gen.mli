(** Seeded generator of random well-typed ObjectMath models.

    Produces surface {!Om_lang.Ast.model} values that exercise every
    frontend construct — single inheritance with [extends ... with]
    parameter rebinding and equation overrides, composition through
    parts, instance arrays with [index]-dependent bindings, and
    cross-instance imports bound to earlier instances' state paths —
    while remaining well-typed by construction: every state variable has
    exactly one explicit ODE, every parameter reduces to a constant, and
    every free name is bound.

    Expression bodies come from a bounded, NaN-safe grammar (guarded
    divisions, shifted-square [log]/[sqrt] arguments, integer powers),
    and flat per-equation cost is kept below the partitioner's split
    threshold so that the cross-strategy trajectory oracle
    ({!Oracle.check}) compares bit-identical computations. *)

val model : Random.State.t -> Om_lang.Ast.model
(** Draw one model.  Deterministic in the state: equal seeds give equal
    models. *)

val source : Random.State.t -> string
(** [Unparse.model (model rng)]. *)

val gen_expr :
  Random.State.t -> refs:Om_lang.Ast.sexpr list -> int -> Om_lang.Ast.sexpr
(** The bounded expression grammar: draws an expression of at most the
    given depth whose leaves are constants or members of [refs]. *)

val stiff_model : ?rate:float -> unit -> Om_lang.Ast.model
(** A two-state model with one fast mode (relaxation onto [cos t] at
    [rate], default 2000) and one slow mode — stiff once the transient
    decays, which drives LSODA's Adams→BDF mode switch. *)
