module A = Om_lang.Ast
module E = Om_expr.Expr

let nopos : A.pos = { line = 0; col = 0 }
let letter k = String.make 1 (Char.chr (Char.code 'a' + (k mod 26)))
let pick rng l = List.nth l (Random.State.int rng (List.length l))
let chance rng p = Random.State.float rng 1.0 < p

(* Constants are multiples of 0.25 in [0.25, 2]; negative values are
   emitted as [Sneg] so the surface text matches what the parser builds,
   and -0.0 can never appear as an initial value (the bitwise trajectory
   oracle relies on states never being minus zero). *)
let gen_mag rng = float_of_int (1 + Random.State.int rng 8) /. 4.

let gen_const rng : A.sexpr =
  let m = A.Snum (gen_mag rng) in
  if chance rng 0.4 then A.Sneg m else m

(* A pure-constant expression: safe anywhere a parameter value must
   reduce to a number (defaults, [extends with] rebinds, part and
   instance parameter bindings). *)
let rec gen_const_expr rng depth : A.sexpr =
  if depth <= 0 || chance rng 0.5 then gen_const rng
  else
    let op = pick rng [ A.Badd; A.Bsub; A.Bmul ] in
    A.Sbin (op, gen_const_expr rng (depth - 1), gen_const_expr rng (depth - 1))

let name_of segs : A.name =
  { segments = List.map (fun b -> { A.base = b; index = None }) segs }

(* ------------------------------------------------------------------ *)
(* Expression grammar.

   Bounded depth and NaN-safe by construction: divisions get a
   denominator of the form [1.5 + a*a], [log]/[sqrt] arguments are
   shifted squares, [exp] only sees negated squares, and powers are
   integer squares/cubes of atoms.  Trajectories can still overflow to
   infinity for explosive polynomial dynamics; the oracle discards the
   (rare) non-finite cases rather than restricting the grammar to
   contractive systems. *)

let rec gen_expr rng ~refs depth : A.sexpr =
  let atom () =
    if refs = [] || chance rng 0.35 then gen_const rng else pick rng refs
  in
  if depth <= 0 then atom ()
  else
    let sub () = gen_expr rng ~refs (depth - 1) in
    match Random.State.int rng 13 with
    | 0 | 1 -> A.Sbin (A.Badd, sub (), sub ())
    | 2 -> A.Sbin (A.Bsub, sub (), sub ())
    | 3 | 4 -> A.Sbin (A.Bmul, sub (), sub ())
    | 5 ->
        let a = atom () in
        A.Sbin
          (A.Bdiv, sub (), A.Sbin (A.Badd, A.Snum 1.5, A.Sbin (A.Bmul, a, a)))
    | 6 -> A.Sneg (sub ())
    | 7 ->
        A.Sbin
          (A.Bpow, atom (), A.Snum (if chance rng 0.5 then 2. else 3.))
    | 8 ->
        A.Scall (pick rng [ "sin"; "cos"; "tanh"; "atan"; "abs" ], [ sub () ])
    | 9 ->
        A.Scall (pick rng [ "min"; "max"; "hypot"; "atan2" ], [ sub (); sub () ])
    | 10 -> (
        let a = atom () in
        match Random.State.int rng 3 with
        | 0 -> A.Scall ("exp", [ A.Sneg (A.Sbin (A.Bpow, a, A.Snum 2.)) ])
        | 1 ->
            A.Scall
              ("log", [ A.Sbin (A.Badd, A.Snum 1.5, A.Sbin (A.Bpow, a, A.Snum 2.)) ])
        | _ ->
            A.Scall
              ( "sqrt",
                [ A.Sbin (A.Badd, A.Snum 0.25, A.Sbin (A.Bpow, a, A.Snum 2.)) ]
              ))
    | _ ->
        A.Sif
          ( {
              sc_lhs = sub ();
              sc_rel = pick rng [ E.Lt; E.Le; E.Gt; E.Ge ];
              sc_rhs = sub ();
            },
            sub (),
            sub () )

(* ------------------------------------------------------------------ *)
(* Class generation.  Each class carries enough metadata to build
   well-typed references: the effective (inherited-inclusive) variables,
   parameters, aliases, imports and parts, plus the total flat state
   count one instance expands to. *)

type cls = {
  cname : string;
  vars : string list;
  params : string list;
  aliases : string list;
  imports : string list;  (** free names every instantiation must bind *)
  parts : (string * string) list;  (** part name, part class *)
  nstates : int;
}

let find_cls infos n = List.find (fun c -> c.cname = n) infos

(* References usable inside the body of a class: locals, one level of
   part state paths, and time. *)
let class_refs info infos : A.sexpr list =
  let local n = A.Sname (name_of [ n ]) in
  List.map local (info.vars @ info.params @ info.aliases @ info.imports)
  @ List.concat_map
      (fun (pname, pcls) ->
        List.map (fun v -> A.Sname (name_of [ pname; v ])) (find_cls infos pcls).vars)
      info.parts
  @ [ A.Sname (name_of [ "time" ]) ]

let gen_class rng ~idx ~(infos : cls list) : cls * A.class_def =
  let tag = letter idx in
  let fresh prefix n = List.init n (fun j -> prefix ^ tag ^ letter j) in
  let parent =
    if infos <> [] && chance rng 0.4 then Some (pick rng infos) else None
  in
  let inh_vars = match parent with Some p -> p.vars | None -> [] in
  let inh_params = match parent with Some p -> p.params | None -> [] in
  let inh_aliases = match parent with Some p -> p.aliases | None -> [] in
  let inh_imports = match parent with Some p -> p.imports | None -> [] in
  let inh_parts = match parent with Some p -> p.parts | None -> [] in
  let inh_nstates = match parent with Some p -> p.nstates | None -> 0 in
  let n_own_vars =
    match parent with
    | None -> 1 + Random.State.int rng 3
    | Some _ -> Random.State.int rng 3
  in
  let own_vars = fresh "v" n_own_vars in
  let own_params = fresh "p" (Random.State.int rng 3) in
  let own_aliases = fresh "q" (Random.State.int rng 2) in
  let own_imports = if chance rng 0.35 then fresh "u" 1 else [] in
  (* One optional part, drawn from small already-generated classes. *)
  let own_parts =
    let candidates =
      List.filter (fun c -> c.nstates + inh_nstates + n_own_vars <= 10) infos
    in
    if candidates <> [] && chance rng 0.4 then
      [ ("r" ^ tag ^ "a", (pick rng candidates).cname) ]
    else []
  in
  let info =
    {
      cname = "C" ^ tag;
      vars = inh_vars @ own_vars;
      params = inh_params @ own_params;
      aliases = inh_aliases @ own_aliases;
      imports = inh_imports @ own_imports;
      parts = inh_parts @ own_parts;
      nstates =
        inh_nstates + n_own_vars
        + List.fold_left
            (fun acc (_, pcls) -> acc + (find_cls infos pcls).nstates)
            0 own_parts;
    }
  in
  let refs = class_refs info infos in
  (* Alias bodies may reference anything except other aliases, keeping
     definition expansion single-level (no exponential blowup). *)
  let alias_refs =
    List.filter
      (function
        | A.Sname { segments = [ { base; _ } ] } ->
            not (List.mem base info.aliases)
        | _ -> true)
      refs
  in
  let params_so_far = ref inh_params in
  let param_members =
    List.map
      (fun p ->
        let default =
          if !params_so_far <> [] && chance rng 0.3 then
            A.Sbin
              ( A.Bmul,
                A.Sname (name_of [ pick rng !params_so_far ]),
                gen_const rng )
          else gen_const_expr rng 1
        in
        params_so_far := p :: !params_so_far;
        A.Parameter (p, default))
      own_params
  in
  let var_members =
    List.map
      (fun v ->
        let init =
          if info.params <> [] && chance rng 0.25 then
            A.Sname (name_of [ pick rng info.params ])
          else gen_const rng
        in
        A.Variable (v, init))
      own_vars
  in
  let alias_members =
    List.map
      (fun a -> A.Alias (a, gen_expr rng ~refs:alias_refs 1))
      own_aliases
  in
  let part_members =
    List.map
      (fun (pname, pcls) ->
        let pc = find_cls infos pcls in
        let import_binds =
          List.map (fun u -> (u, gen_expr rng ~refs 1)) pc.imports
        in
        let param_binds =
          if pc.params <> [] && chance rng 0.4 then
            [ (pick rng pc.params, gen_const_expr rng 1) ]
          else []
        in
        A.Part (pname, pcls, import_binds @ param_binds))
      own_parts
  in
  let eq_members =
    List.map (fun v -> A.Equation (v, gen_expr rng ~refs (1 + Random.State.int rng 3)))
      own_vars
  in
  (* Optionally override one inherited equation. *)
  let override =
    if inh_vars <> [] && chance rng 0.4 then
      [ A.Equation (pick rng inh_vars, gen_expr rng ~refs (1 + Random.State.int rng 2)) ]
    else []
  in
  let parent_decl =
    match parent with
    | None -> None
    | Some p ->
        let rebinds =
          if p.params <> [] && chance rng 0.5 then
            [ (pick rng p.params, gen_const_expr rng 1) ]
          else []
        in
        Some (p.cname, rebinds)
  in
  ( info,
    {
      A.cname = info.cname;
      parent = parent_decl;
      members =
        param_members @ var_members @ alias_members @ part_members
        @ eq_members @ override;
      cpos = nopos;
    } )

(* ------------------------------------------------------------------ *)
(* Instances.  Walk the flat state/definition paths of earlier
   instances so imports can be bound to them (cross-instance coupling,
   exactly what the paper's bearing model does between rollers). *)

let rec flat_paths infos (c : cls) prefix : A.name list =
  let own =
    List.map
      (fun v -> { A.segments = prefix @ [ { A.base = v; index = None } ] })
      c.vars
  in
  let parts =
    List.concat_map
      (fun (pname, pcls) ->
        flat_paths infos (find_cls infos pcls)
          (prefix @ [ { A.base = pname; index = None } ]))
      c.parts
  in
  own @ parts

let gen_instances rng infos : A.instance_def list =
  let budget = ref 24 in
  let paths : A.name list ref = ref [] in
  let insts = ref [] in
  let n = 1 + Random.State.int rng 3 in
  for k = 0 to n - 1 do
    let candidates = List.filter (fun c -> c.nstates <= !budget) infos in
    if candidates <> [] then begin
      let c = pick rng candidates in
      let iname = "m" ^ letter k in
      let range =
        if chance rng 0.3 then
          let copies = 1 + Random.State.int rng (min 3 (!budget / c.nstates)) in
          Some (1, copies)
        else None
      in
      let is_array = range <> None in
      let bind_import u =
        let choices =
          [ `Const ]
          @ (if !paths <> [] then [ `Path; `Path ] else [])
          @ if is_array then [ `Index ] else []
        in
        let v =
          match pick rng choices with
          | `Const -> gen_const_expr rng 1
          | `Path -> A.Sname (pick rng !paths)
          | `Index ->
              A.Sbin (A.Bmul, A.Sname (name_of [ "index" ]), A.Snum 0.5)
        in
        (u, v)
      in
      let param_binds =
        if c.params <> [] && chance rng 0.3 then
          [ ( pick rng c.params,
              if is_array && chance rng 0.5 then
                A.Sbin
                  (A.Badd, A.Snum 1., A.Sbin (A.Bmul, A.Sname (name_of [ "index" ]), A.Snum 0.25))
              else gen_const_expr rng 1 ) ]
        else []
      in
      let ibindings = List.map bind_import c.imports @ param_binds in
      insts :=
        { A.iname; range; icls = c.cname; ibindings; ipos = nopos } :: !insts;
      let copies = match range with None -> 1 | Some (lo, hi) -> hi - lo + 1 in
      budget := !budget - (copies * c.nstates);
      let prefixes =
        match range with
        | None -> [ [ { A.base = iname; index = None } ] ]
        | Some (lo, hi) ->
            List.init (hi - lo + 1) (fun i ->
                [ { A.base = iname; index = Some (A.Snum (float_of_int (lo + i))) } ])
      in
      paths :=
        !paths @ List.concat_map (fun p -> flat_paths infos c p) prefixes
    end
  done;
  List.rev !insts

(* ------------------------------------------------------------------ *)

let candidate rng : A.model =
  let n_classes = 2 + Random.State.int rng 3 in
  let infos = ref [] in
  let classes = ref [] in
  for idx = 0 to n_classes - 1 do
    let info, cdef = gen_class rng ~idx ~infos:!infos in
    infos := !infos @ [ info ];
    classes := !classes @ [ cdef ]
  done;
  let instances = gen_instances rng !infos in
  { A.mname = "Fuzzed"; classes = !classes; instances }

let max_equation_cost (f : Om_lang.Flat_model.t) =
  List.fold_left
    (fun acc (_, e) -> Float.max acc (Om_expr.Cost.flops_mean e))
    0. f.equations

let model rng : A.model =
  (* Regenerate (rarely) when the flat cost bound is exceeded: the
     trajectory oracle requires the partitioner never to split an
     equation, because splitting rewrites expressions and is not
     bit-preserving against the raw-equation interpreter.  Structural
     failures are NOT retried — a generated model that fails to flatten
     is a real bug and must reach the oracle. *)
  let rec go attempts =
    let m = candidate rng in
    match Om_lang.Flatten.flatten m with
    | exception Om_lang.Flatten.Error _ -> m
    | f ->
        if max_equation_cost f <= 1500. || attempts >= 20 then m
        else go (attempts + 1)
  in
  go 0

let source rng = Om_lang.Unparse.model (model rng)

let stiff_model ?(rate = 2000.) () : A.model =
  let v n = A.Sname (name_of [ n ]) in
  {
    A.mname = "Stiff";
    classes =
      [
        {
          A.cname = "S";
          parent = None;
          members =
            [
              A.Parameter ("k", A.Snum rate);
              A.Variable ("x", A.Snum 1.);
              A.Variable ("y", A.Snum 0.);
              (* Fast relaxation of x onto the slow manifold cos(t),
                 with y trailing x: stiff once the transient decays. *)
              A.Equation
                ( "x",
                  A.Sbin
                    ( A.Bmul,
                      A.Sneg (v "k"),
                      A.Sbin (A.Bsub, v "x", A.Scall ("cos", [ v "time" ])) ) );
              A.Equation ("y", A.Sbin (A.Bsub, v "x", v "y"));
            ];
          cpos = nopos;
        };
      ];
    instances =
      [ { A.iname = "s"; range = None; icls = "S"; ibindings = []; ipos = nopos } ];
  }
