(** Greedy counterexample shrinking over surface models.

    Candidate simplifications, tried biggest-cut first: drop an
    instance, drop a class, shorten an instance-array range, drop a
    member (a state variable takes its equations with it), sever or
    simplify an inheritance link, drop a binding, and replace any
    expression by [1.0] or one of its proper subterms.  A candidate is
    kept when the caller's predicate still holds (typically: the oracle
    still reports a violation of the same invariant); ill-formed
    candidates are rejected by the predicate like any other. *)

val candidates : Om_lang.Ast.model -> Om_lang.Ast.model list
(** One-step simplifications of a model, in decreasing order of cut
    size. *)

val shrink :
  ?budget:int ->
  Om_lang.Ast.model ->
  predicate:(Om_lang.Ast.model -> bool) ->
  Om_lang.Ast.model
(** Greedy fixpoint of {!candidates} under [predicate], which is assumed
    to hold for the input.  [budget] (default 300) bounds the number of
    predicate evaluations; a raising predicate counts as [false]. *)
