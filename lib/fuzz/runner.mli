(** Differential fuzzing driver: generate, check, shrink, dump.

    Each case [i] draws a model from
    [Random.State.make [| seed; i |]] — fully reproducible from the
    [(seed, index)] pair — and runs the {!Oracle} on it.  Failing cases
    are shrunk with {!Shrink.shrink} (predicate: the same invariant
    still fails) and, when [out_dir] is given, dumped as
    [caseNNNN-original.om], [caseNNNN-shrunk.om] and
    [caseNNNN-report.txt] counterexample files. *)

type failure = {
  index : int;  (** case index; regenerate with [make [| seed; index |]] *)
  violations : Oracle.violation list;  (** on the original model *)
  original : Om_lang.Ast.model;
  shrunk : Om_lang.Ast.model;
  shrunk_violations : Oracle.violation list;
}

type summary = {
  cases : int;
  discarded : int;  (** trajectory matrix skipped (non-finite reference) *)
  dim_total : int;  (** summed flat dimensions, for mean-size reporting *)
  task_total : int;
  failures : failure list;
}

val run :
  ?out_dir:string ->
  ?check:(Om_lang.Ast.model -> Oracle.result) ->
  ?shrink_budget:int ->
  ?chaos:bool ->
  ?log:(string -> unit) ->
  cases:int ->
  seed:int ->
  unit ->
  summary
(** [check] defaults to {!Oracle.check} (tests inject stubs);
    [log] receives one line per noteworthy event.

    With [~chaos:true] (default false) each case additionally injects
    one seeded fault (derived from the [(seed, index)] pair) into a
    2-domain run and demands bitwise recovery — see {!Oracle.check}.
    Chaos failures are never shrunk: the fault plan's (round, task)
    coordinates do not survive model reduction, so [shrunk] is the
    original model. *)

val pp_summary : summary Fmt.t
