module A = Om_lang.Ast

type failure = {
  index : int;
  violations : Oracle.violation list;
  original : A.model;
  shrunk : A.model;
  shrunk_violations : Oracle.violation list;
}

type summary = {
  cases : int;
  discarded : int;
  dim_total : int;
  task_total : int;
  failures : failure list;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let dump_failure dir ~seed (fl : failure) =
  mkdir_p dir;
  let base i suffix = Filename.concat dir (Printf.sprintf "case%04d-%s" i suffix) in
  write_file (base fl.index "original.om") (Om_lang.Unparse.model fl.original);
  write_file (base fl.index "shrunk.om") (Om_lang.Unparse.model fl.shrunk);
  let report =
    Fmt.str "case %d (seed %d)@.@.original violations:@.%a@.@.shrunk violations:@.%a@."
      fl.index seed
      (Fmt.list ~sep:Fmt.cut Oracle.pp_violation)
      fl.violations
      (Fmt.list ~sep:Fmt.cut Oracle.pp_violation)
      fl.shrunk_violations
  in
  write_file (base fl.index "report.txt") report

let run ?out_dir ?check ?(shrink_budget = 300) ?(chaos = false) ?(log = ignore)
    ~cases ~seed () =
  let check_for i =
    match check with
    | Some c -> c
    | None ->
        if chaos then Oracle.check ~chaos:(seed lxor (i * 0x9e3779b1))
        else Oracle.check ?chaos:None
  in
  let failures = ref [] in
  let discarded = ref 0 in
  let dim_total = ref 0 in
  let task_total = ref 0 in
  for i = 0 to cases - 1 do
    let rng = Random.State.make [| seed; i |] in
    let m = Gen.model rng in
    let check = check_for i in
    let res = check m in
    dim_total := !dim_total + res.Oracle.dim;
    task_total := !task_total + res.Oracle.n_tasks;
    (match res.Oracle.discarded with
    | Some why ->
        incr discarded;
        log (Printf.sprintf "case %d: discarded (%s)" i why)
    | None -> ());
    if res.Oracle.violations <> [] then begin
      let first = List.hd res.Oracle.violations in
      let shrunk, shrunk_violations =
        if chaos then begin
          (* A fault plan's (round, task) coordinates are meaningless on
             a shrunk model, so chaos failures are reported as-is. *)
          log
            (Printf.sprintf "case %d: VIOLATION %s (chaos: not shrinking)" i
               (Fmt.str "%a" Oracle.pp_violation first));
          (m, res.Oracle.violations)
        end
        else begin
          log
            (Printf.sprintf "case %d: VIOLATION %s — shrinking..." i
               (Fmt.str "%a" Oracle.pp_violation first));
          (* Shrink while the same invariant keeps failing. *)
          let predicate m' =
            List.exists
              (fun v -> v.Oracle.invariant = first.Oracle.invariant)
              (check m').Oracle.violations
          in
          let shrunk = Shrink.shrink ~budget:shrink_budget m ~predicate in
          (shrunk, (check shrunk).Oracle.violations)
        end
      in
      let fl =
        { index = i; violations = res.Oracle.violations; original = m; shrunk;
          shrunk_violations }
      in
      failures := fl :: !failures;
      match out_dir with
      | Some dir -> dump_failure dir ~seed fl
      | None -> ()
    end
  done;
  {
    cases;
    discarded = !discarded;
    dim_total = !dim_total;
    task_total = !task_total;
    failures = List.rev !failures;
  }

let pp_summary ppf s =
  Fmt.pf ppf "%d cases: %d failed, %d discarded (mean dim %.1f, mean tasks %.1f)"
    s.cases (List.length s.failures) s.discarded
    (if s.cases = 0 then 0. else float_of_int s.dim_total /. float_of_int s.cases)
    (if s.cases = 0 then 0. else float_of_int s.task_total /. float_of_int s.cases)
