module A = Om_lang.Ast
module E = Om_expr.Expr
module FM = Om_lang.Flat_model
module R = Objectmath.Runtime

type violation = { invariant : string; detail : string }

type result = {
  dim : int;
  n_tasks : int;
  discarded : string option;
  violations : violation list;
}

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.invariant v.detail

(* Integration window shared by every strategy: short enough that even
   explosive polynomial dynamics rarely overflow, long enough to cross
   several semi-dynamic rescheduling periods. *)
let t0 = 0.
let tend = 0.4
let h = 0.025

let bits = Int64.bits_of_float

let finite_trajectory (tr : Om_ode.Odesys.trajectory) =
  Array.for_all Float.is_finite tr.ts
  && Array.for_all (Array.for_all Float.is_finite) tr.states

(* The raw-equation interpreter: a tree walk over the flat model with a
   hashtable environment, independent of the whole codegen pipeline. *)
let interp_rhs (f : FM.t) =
  let names = FM.state_names f in
  let eqs = Array.of_list f.equations in
  let tbl = Hashtbl.create (Array.length names + 1) in
  fun t y ydot ->
    Array.iteri (fun i n -> Hashtbl.replace tbl n y.(i)) names;
    Hashtbl.replace tbl "t" t;
    Array.iteri (fun i (_, rhs) -> ydot.(i) <- Om_expr.Eval.eval tbl rhs) eqs

let integrate_seq (f : FM.t) rhs =
  let sys =
    Om_ode.Odesys.make ~names:(FM.state_names f) ~dim:(FM.dim f) rhs
  in
  Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0
    ~y0:(FM.initial_values f) ~tend ~h

let check ?chaos (m : A.model) : result =
  let vs = ref [] in
  let fail invariant fmt =
    Printf.ksprintf (fun detail -> vs := { invariant; detail } :: !vs) fmt
  in
  let dim = ref 0 and n_tasks = ref 0 and discarded = ref None in
  (* ---- unparse → parse round trip ---------------------------------- *)
  let src = Om_lang.Unparse.model m in
  let reparsed =
    match Om_lang.Parser.parse_model src with
    | m2 ->
        let src2 = Om_lang.Unparse.model m2 in
        if src <> src2 then
          fail "roundtrip" "unparse-parse-unparse is not a textual fixpoint";
        Some m2
    | exception Om_lang.Parser.Error (msg, pos) ->
        fail "roundtrip" "generated source does not parse: %s at %d:%d" msg
          pos.line pos.col;
        None
    | exception Om_lang.Lexer.Error (msg, pos) ->
        fail "roundtrip" "generated source does not lex: %s at %d:%d" msg
          pos.line pos.col;
        None
  in
  (* ---- serve journal round trip ------------------------------------ *)
  (* The durability invariant of the serve layer, on this generated
     model: encoding a job as its journal accept record and replaying
     the file must reconstruct exactly the accepted-but-unfinished
     jobs, bit for bit.  Bitwise-identical *execution* of the replayed
     job then follows from the spec carrying the source text verbatim
     plus the pipeline-determinism invariants below.  Also covers the
     torn-tail rule: a byte-truncated final line (the crash's own
     half-written record) is ignored, not a replay error. *)
  (let module J = Om_serve.Job in
   let module Jr = Om_serve.Journal in
   let resolve _ = None in
   let spec ~id ~retries ~chaos =
     {
       J.default with
       J.id;
       tenant = "fuzz";
       priority = String.length src mod 3;
       source = src;
       solver = J.Rk4 (Some h);
       tend;
       chunk = 2;
       retries;
       chaos;
     }
   in
   let s1 = spec ~id:"fz-1" ~retries:1 ~chaos:None in
   let s2 = spec ~id:"fz-2" ~retries:0 ~chaos:None in
   let s3 =
     spec ~id:"fz-3" ~retries:2
       ~chaos:(Some { J.kind = `Nan; task = 0; round = 2; count = 1; attempts = 1 })
   in
   List.iter
     (fun s ->
       if J.of_json ~resolve (J.to_json s) <> Ok s then
         fail "journal" "to_json/of_json is not the identity on %s" s.J.id)
     [ s1; s2; s3 ];
   let path = Filename.temp_file "om_fuzz_journal" ".ndjson" in
   Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
     (fun () ->
       let j = Jr.open_append path in
       ignore (Jr.record_accept j s1);
       ignore (Jr.record_accept j s2);
       ignore (Jr.record_accept j s3);
       Jr.record_state j ~id:"fz-2" ~attempt:1 "running";
       Jr.record_state j ~id:"fz-2" ~attempt:1 ~status:"ok" "done";
       Jr.record_state j ~id:"fz-3" ~attempt:1 ~delay_s:0.01 "retrying";
       Jr.close j;
       (* simulate the crash's torn write: half an accept record *)
       let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
       output_string oc "{\"rec\":\"accept\",\"job\":{\"id\":\"to";
       close_out oc;
       match Jr.replay path with
       | Error msg -> fail "journal" "replay failed: %s" msg
       | Ok r ->
           if not r.Jr.torn_tail then
             fail "journal" "torn final line not detected";
           if r.Jr.accepted <> 3 || r.Jr.completed <> 1 then
             fail "journal" "replay counted %d accepted / %d done (want 3/1)"
               r.Jr.accepted r.Jr.completed;
           if r.Jr.pending <> [ s1; s3 ] then
             fail "journal"
               "replay pending set is not the accepted-minus-terminal jobs \
                in accept order"));
  (* ---- flatten + typecheck ----------------------------------------- *)
  match Om_lang.Flatten.flatten m with
  | exception Om_lang.Flatten.Error msg ->
      fail "flatten" "%s" msg;
      { dim = 0; n_tasks = 0; discarded = None; violations = List.rev !vs }
  | f ->
      dim := FM.dim f;
      (match Om_lang.Typecheck.check f with
      | () -> ()
      | exception Invalid_argument msg -> fail "typecheck" "%s" msg);
      (* Reparsed source must flatten to the same model. *)
      (match reparsed with
      | None -> ()
      | Some m2 -> (
          match Om_lang.Flatten.flatten m2 with
          | exception Om_lang.Flatten.Error msg ->
              fail "roundtrip" "reparsed model does not flatten: %s" msg
          | f2 ->
              if
                not
                  (List.length f.states = List.length f2.states
                  && List.for_all2
                       (fun (a, x) (b, y) -> a = b && bits x = bits y)
                       f.states f2.states
                  && List.for_all2
                       (fun (a, x) (b, y) -> a = b && E.equal x y)
                       f.equations f2.equations)
              then
                fail "roundtrip" "reparsed model flattens differently"));
      (* ---- flatten idempotence ------------------------------------- *)
      (let fsrc = Om_lang.Unparse.flat_model f in
       match Om_lang.Flatten.flatten_string fsrc with
       | exception Om_lang.Flatten.Error msg ->
           fail "flatten-idempotence" "flat source does not reflatten: %s" msg
       | exception Om_lang.Parser.Error (msg, _) ->
           fail "flatten-idempotence" "flat source does not parse: %s" msg
       | f2 ->
           let ren v =
             if v = "t" then "t" else "m." ^ Om_lang.Unparse.flat_name v
           in
           if
             not
               (List.length f.states = List.length f2.states
               && List.for_all2
                    (fun (a, x) (b, y) -> ren a = b && bits x = bits y)
                    f.states f2.states
               && List.for_all2
                    (fun (a, x) (b, y) ->
                      ren a = b && E.equal (Om_expr.Subst.rename ren x) y)
                    f.equations f2.equations)
           then fail "flatten-idempotence" "reflattened model differs");
      (* ---- SCC / topo consistency ---------------------------------- *)
      let g = FM.dependency_graph f in
      let comps = Om_graph.Scc.tarjan g in
      let n_nodes = Om_graph.Digraph.node_count g in
      let seen = Array.make n_nodes 0 in
      Array.iteri
        (fun c members ->
          List.iter
            (fun v ->
              seen.(v) <- seen.(v) + 1;
              if comps.comp_of.(v) <> c then
                fail "scc" "node %d: comp_of says %d but listed in %d" v
                  comps.comp_of.(v) c)
            members)
        comps.members;
      Array.iteri
        (fun v k ->
          if k <> 1 then
            fail "scc" "node %d appears in %d components" v k)
        seen;
      let cond = Om_graph.Scc.condensation g comps in
      if not (Om_graph.Topo.is_acyclic cond) then
        fail "scc" "condensation has a cycle"
      else begin
        let order = Om_graph.Topo.sort cond in
        let pos = Array.make (Om_graph.Digraph.node_count cond) 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        List.iter
          (fun (a, b) ->
            if pos.(a) >= pos.(b) then
              fail "topo" "order places component %d after its successor %d" a b)
          (Om_graph.Digraph.edges cond)
      end;
      List.iter
        (fun (a, b) ->
          let ka = comps.comp_of.(a) and kb = comps.comp_of.(b) in
          if ka <> kb && not (Om_graph.Digraph.mem_edge cond ka kb) then
            fail "scc" "edge %d->%d lost by the condensation" a b)
        (Om_graph.Digraph.edges g);
      (* ---- Jacobian: symbolic vs numeric, pattern superset, colored
              compression -------------------------------------------- *)
      (match Om_ode.Odesys.of_equations f.equations with
      | exception _ -> ()
      | sys_sym when FM.dim f > 0 -> (
          let jnames = FM.state_names f in
          let y = FM.initial_values f in
          let tprobe = 0.1 in
          let sys_num =
            Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
              f.equations
          in
          match
            ( Om_ode.Jacobian.analytic sys_sym tprobe y,
              Om_ode.Jacobian.numeric sys_num tprobe y,
              Om_ode.Jacobian.numeric ~eps:(-1e-8) sys_num tprobe y )
          with
          | exception _ -> ()
          | sym, num, num_bwd ->
              let all_finite =
                Array.for_all (Array.for_all Float.is_finite)
              in
              (* Explosive generated dynamics can overflow at the probe
                 point; the invariant only speaks about finite values. *)
              if all_finite sym && all_finite num then begin
                (* Symbolic and forward-difference Jacobians must agree
                   within the fd truncation error — except at kinks
                   (min/max/abs ties), where the derivative does not
                   exist and the branch conventions legitimately differ.
                   A kink is detected as forward and backward
                   differences disagreeing. *)
                let tol = 2e-3 in
                let agree a b =
                  Float.abs (a -. b)
                  <= tol *. (1. +. Float.abs a +. Float.abs b)
                in
                Array.iteri
                  (fun i row ->
                    Array.iteri
                      (fun j s ->
                        let smooth =
                          Float.is_finite num_bwd.(i).(j)
                          && agree num.(i).(j) num_bwd.(i).(j)
                        in
                        if smooth && not (agree s num.(i).(j)) then
                          fail "jacobian"
                            "d%s/d%s: symbolic %g vs numeric %g" jnames.(i)
                            jnames.(j) s num.(i).(j))
                      row)
                  sym;
                (* The declared read-set pattern must cover every numeric
                   nonzero exactly: a perturbation outside the pattern
                   cannot change f_i, so out-of-pattern differences are
                   identically zero. *)
                (match sys_num.sparsity with
                | None -> fail "jacobian-pattern" "of_equations lost the pattern"
                | Some pat ->
                    Array.iteri
                      (fun i row ->
                        Array.iteri
                          (fun j v ->
                            if v <> 0. && not (Om_ode.Sparse.mem pat i j)
                            then
                              fail "jacobian-pattern"
                                "numeric nonzero d%s/d%s = %g outside the \
                                 structural pattern"
                                jnames.(i) jnames.(j) v)
                          row)
                      num);
                (* Colored compressed columns must decompress to the
                   dense forward differences bitwise. *)
                match
                  Om_ode.Jacobian.plan ~jac_mode:Om_ode.Odesys.Sparse sys_num
                with
                | Om_ode.Jacobian.Sparse_plan ctx ->
                    Om_ode.Jacobian.sparse_eval_into sys_num ctx tprobe y;
                    let pat = ctx.spat in
                    for i = 0 to FM.dim f - 1 do
                      for k = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
                        let j = pat.col_ind.(k) in
                        if bits ctx.sj.v.(k) <> bits num.(i).(j) then
                          fail "jacobian-colored"
                            "compressed d%s/d%s: %h differs bitwise from \
                             the uncompressed difference %h"
                            jnames.(i) jnames.(j) ctx.sj.v.(k) num.(i).(j)
                      done
                    done
                | _ -> fail "jacobian-colored" "sparse plan not taken"
              end)
      | _ -> ());
      (* ---- pipeline ------------------------------------------------ *)
      (match Om_codegen.Pipeline.compile f with
      | exception exn ->
          fail "pipeline" "compile raised %s" (Printexc.to_string exn)
      | r ->
          n_tasks := Array.length r.tasks;
          if r.plan.n_partials <> 0 then
            fail "no-split"
              "partitioner split an equation (%d partials); the generator's \
               cost bound should prevent this"
              r.plan.n_partials;
          (* ---- schedule validity ----------------------------------- *)
          let check_sched what (s : Om_sched.Lpt.schedule) =
            let n = Array.length r.tasks in
            if Array.length s.assignment <> n then
              fail "schedule" "%s: assignment length %d for %d tasks" what
                (Array.length s.assignment) n;
            Array.iteri
              (fun tid p ->
                if p < 0 || p >= s.nprocs then
                  fail "schedule" "%s: task %d on processor %d of %d" what tid
                    p s.nprocs)
              s.assignment;
            let makespan = Array.fold_left Float.max 0. s.loads in
            if Float.abs (makespan -. s.makespan) > 1e-9 *. Float.max 1. makespan
            then
              fail "schedule" "%s: makespan %g but max load %g" what s.makespan
                makespan;
            let covered = Array.make n 0 in
            for p = 0 to s.nprocs - 1 do
              List.iter
                (fun tid ->
                  covered.(tid) <- covered.(tid) + 1;
                  if s.assignment.(tid) <> p then
                    fail "schedule" "%s: tasks_of %d lists task %d owned by %d"
                      what p tid s.assignment.(tid))
                (Om_sched.Lpt.tasks_of s p)
            done;
            Array.iteri
              (fun tid k ->
                if k <> 1 then
                  fail "schedule" "%s: task %d scheduled %d times" what tid k)
              covered
          in
          List.iter
            (fun nprocs ->
              check_sched
                (Printf.sprintf "lpt-%d" nprocs)
                (Om_sched.Lpt.schedule r.tasks ~nprocs))
            [ 1; 2; 4 ];
          (let sd = Om_sched.Semidynamic.create ~period:2 r.tasks ~nprocs:2 in
           let costs = Array.map (fun t -> t.Om_sched.Task.cost) r.tasks in
           for round = 1 to 5 do
             let measured =
               Array.mapi
                 (fun i c ->
                   Float.max 1. c *. (1.5 +. Float.sin (float_of_int (i + round))))
                 costs
             in
             Om_sched.Semidynamic.observe sd measured;
             check_sched
               (Printf.sprintf "semidynamic-round-%d" round)
               (Om_sched.Semidynamic.current sd)
           done;
           if Om_sched.Semidynamic.reschedule_count sd < 1 then
             fail "schedule" "semidynamic never rescheduled in 5 rounds");
          (* ---- bitwise trajectory identity ------------------------- *)
          let reference = integrate_seq f (Om_codegen.Pipeline.rhs_fn r) in
          if not (finite_trajectory reference) then
            discarded := Some "non-finite reference trajectory"
          else begin
            let names = FM.state_names f in
            let compare_traj what (tr : Om_ode.Odesys.trajectory) =
              if Array.length tr.ts <> Array.length reference.ts then
                fail "trajectory" "%s: %d steps, reference has %d" what
                  (Array.length tr.ts)
                  (Array.length reference.ts)
              else begin
                let diverged = ref false in
                Array.iteri
                  (fun k t ->
                    if (not !diverged) && bits t <> bits reference.ts.(k) then begin
                      diverged := true;
                      fail "trajectory" "%s: time diverges at step %d: %h vs %h"
                        what k t reference.ts.(k)
                    end)
                  tr.ts;
                Array.iteri
                  (fun k row ->
                    Array.iteri
                      (fun i x ->
                        if
                          (not !diverged)
                          && bits x <> bits reference.states.(k).(i)
                        then begin
                          diverged := true;
                          fail "trajectory"
                            "%s: state %s diverges at t=%g: %h vs %h" what
                            names.(i) reference.ts.(k) x
                            reference.states.(k).(i)
                        end)
                      row)
                  tr.states
              end
            in
            let strategy what run =
              match run () with
              | tr -> compare_traj what tr
              | exception exn ->
                  fail "trajectory" "%s raised %s" what (Printexc.to_string exn)
            in
            strategy "eval-interp" (fun () -> integrate_seq f (interp_rhs f));
            strategy "exec-closures" (fun () ->
                let rc =
                  Om_codegen.Pipeline.compile
                    ~backend:Om_codegen.Bytecode_backend.Exec_closures f
                in
                integrate_seq f (Om_codegen.Pipeline.rhs_fn rc));
            strategy "exec-vm-nopeephole" (fun () ->
                let rn = Om_codegen.Pipeline.compile ~optimize:false f in
                integrate_seq f (Om_codegen.Pipeline.rhs_fn rn));
            let runtime what config =
              strategy what (fun () ->
                  (R.execute ~config ~solver:(R.Rk4 h) ~t0 ~tend r).trajectory)
            in
            runtime "simulated"
              { R.default_config with nworkers = 2 };
            runtime "simulated-semidynamic"
              { R.default_config with nworkers = 2; scheduling = R.Semidynamic 3 };
            List.iter
              (fun n ->
                runtime
                  (Printf.sprintf "real-domains-%d" n)
                  { R.default_config with execution = R.Real_domains n })
              [ 1; 2; 4 ];
            runtime "real-domains-2-semidynamic"
              {
                R.default_config with
                execution = R.Real_domains 2;
                scheduling = R.Semidynamic 3;
              };
            (* ---- batched ensemble: lockstep RK4 ≡ scalar runs -------- *)
            let run_batch y0s =
              let bb =
                Om_codegen.Batch_backend.create r.compiled
                  ~width:(Array.length y0s)
              in
              let ens =
                Om_ode.Ensemble.create ~dim:(FM.dim f)
                  ~f:(Om_codegen.Batch_backend.brhs bb)
                  y0s
              in
              let rep = Om_ode.Ensemble.rk4 ~record:true ens ~t0 ~tend ~h in
              match rep.trajectories with
              | Some trs -> trs
              | None -> failwith "ensemble rk4 recorded no trajectories"
            in
            (* Batch of one over the model's own initial state must be
               bitwise identical to the scalar reference trajectory. *)
            strategy "ensemble-batch-1" (fun () ->
                (run_batch [| FM.initial_values f |]).(0));
            (* A batch of perturbed members: each member must reproduce a
               scalar integrate_fixed run from its own initial state.  On
               divergence, shrink along the batch index — re-run the
               offending member alone to separate VM batching from
               lockstep interaction between members. *)
            let scalar_run y0 =
              let sys =
                Om_ode.Odesys.make ~names ~dim:(FM.dim f)
                  (Om_codegen.Pipeline.rhs_fn r)
              in
              Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0 ~y0 ~tend ~h
            in
            let diverges (a : Om_ode.Odesys.trajectory)
                (b : Om_ode.Odesys.trajectory) =
              if Array.length a.ts <> Array.length b.ts then
                Some
                  (Printf.sprintf "%d steps vs %d" (Array.length a.ts)
                     (Array.length b.ts))
              else begin
                let d = ref None in
                Array.iteri
                  (fun k t ->
                    if !d = None && bits t <> bits b.ts.(k) then
                      d :=
                        Some
                          (Printf.sprintf "time at step %d: %h vs %h" k t
                             b.ts.(k)))
                  a.ts;
                Array.iteri
                  (fun k row ->
                    Array.iteri
                      (fun i x ->
                        if !d = None && bits x <> bits b.states.(k).(i) then
                          d :=
                            Some
                              (Printf.sprintf "state %s at t=%g: %h vs %h"
                                 names.(i) b.ts.(k) x b.states.(k).(i)))
                      row)
                  a.states;
                !d
              end
            in
            let nbatch = 3 in
            let member_y0 m =
              Array.mapi
                (fun i v ->
                  v +. (1e-9 *. float_of_int (((m * 31) + (i * 7)) mod 13)))
                (FM.initial_values f)
            in
            let y0s = Array.init nbatch member_y0 in
            (match run_batch y0s with
            | exception exn ->
                fail "ensemble" "batch-%d rk4 raised %s" nbatch
                  (Printexc.to_string exn)
            | trs ->
                let rec first_bad m =
                  if m >= nbatch then None
                  else
                    match diverges trs.(m) (scalar_run y0s.(m)) with
                    | Some d -> Some (m, d)
                    | None -> first_bad (m + 1)
                in
                (match first_bad 0 with
                | None -> ()
                | Some (m, d) ->
                    fail "ensemble"
                      "batch-%d member %d diverges from its scalar run: %s"
                      nbatch m d;
                    (* shrink to batch index [m] alone *)
                    (match run_batch [| y0s.(m) |] with
                    | exception _ -> ()
                    | trs1 -> (
                        match diverges trs1.(0) (scalar_run y0s.(m)) with
                        | Some d1 ->
                            fail "ensemble"
                              "shrunk: member %d alone (batch of 1) still \
                               diverges: %s"
                              m d1
                        | None ->
                            fail "ensemble"
                              "shrunk: member %d alone matches — divergence \
                               needs batch width %d (lockstep interaction)"
                              m nbatch))));
            (* ---- chaos: one seeded fault, recovery must be bitwise --- *)
            (match chaos with
            | None -> ()
            | Some cseed when !n_tasks > 0 ->
                let plan =
                  Om_guard.Fault_plan.seeded ~seed:cseed ~ntasks:!n_tasks
                    ~nworkers:2 ~max_round:40
                in
                let has_delay =
                  List.exists
                    (function
                      | Om_guard.Fault_plan.Delay_worker _ -> true
                      | _ -> false)
                    (Om_guard.Fault_plan.faults plan)
                in
                let config =
                  {
                    R.default_config with
                    execution = R.Real_domains 2;
                    faults = Some plan;
                    barrier_deadline = (if has_delay then 1e-4 else 0.);
                  }
                in
                (match R.execute ~config ~solver:(R.Rk4 h) ~t0 ~tend r with
                | rep ->
                    compare_traj "chaos-real-domains-2" rep.R.trajectory;
                    if rep.R.faults_injected < 1 then
                      fail "chaos"
                        "seeded plan (%s) injected nothing over the run"
                        (Fmt.str "%a" Om_guard.Fault_plan.pp plan)
                | exception exn ->
                    fail "chaos" "recovery from %s raised %s"
                      (Fmt.str "%a" Om_guard.Fault_plan.pp plan)
                      (Printexc.to_string exn))
            | Some _ -> ())
          end);
      {
        dim = !dim;
        n_tasks = !n_tasks;
        discarded = !discarded;
        violations = List.rev !vs;
      }
