(** Largest-processing-time (LPT) multiprocessor scheduling.

    The paper (§3.2.3, citing Coffman & Denning) schedules the mutually
    independent RHS tasks with LPT: sort by predicted cost, repeatedly give
    the next task to the least-loaded processor.  LPT is a 4/3-approximation
    of the optimal makespan. *)

type schedule = {
  nprocs : int;
  assignment : int array;  (** task id -> processor *)
  loads : float array;  (** per-processor total cost *)
  makespan : float;
}

val schedule : ?costs:float array -> Task.t array -> nprocs:int -> schedule
(** [costs] overrides the static per-task costs (used by the semi-dynamic
    variant with measured execution times).
    @raise Invalid_argument if [nprocs < 1]. *)

val tasks_of : schedule -> int -> int list
(** Task ids assigned to a processor, in ascending id order. *)

val imbalance : schedule -> float
(** [makespan / (total / nprocs)]; 1.0 is a perfectly balanced schedule. *)
