(** Semi-dynamic LPT rescheduling (paper §3.2.3).

    Conditional expressions inside right-hand sides make task times vary
    during simulation, so a static schedule degrades.  The paper feeds "the
    elapsed times for right-hand side evaluations during the previous
    iteration step" back into LPT and re-schedules regularly, at a measured
    overhead below 1% of execution time.

    This module keeps an exponentially smoothed estimate of each task's
    execution time and recomputes the LPT schedule every [period]
    iterations.  The cost charged for each rescheduling is modelled as
    [c * n log2 n] flop units on the supervisor (sorting dominates), which
    the machine simulator converts to time. *)

type t

val create :
  ?period:int ->
  ?smoothing:float ->
  ?costs:float array ->
  Task.t array ->
  nprocs:int ->
  t
(** [period] (default 10) iterations between reschedules; [smoothing]
    (default 0.5) is the weight of the newest measurement.  [costs]
    overrides the initial cost estimates (and the initial schedule) —
    the real executor passes normalised static costs here so that
    subsequently observed per-round time {e shares} live on the same
    scale as the estimates.  The array is copied.
    @raise Invalid_argument if [period < 1], [smoothing] is outside
    (0, 1], or [costs] does not match the task count. *)

val current : t -> Lpt.schedule

val estimates : t -> float array
(** The current smoothed cost estimates (a copy). *)

val observe : t -> float array -> unit
(** Record measured per-task costs for the iteration just executed;
    reschedules when the period has elapsed.  Units are the caller's
    choice (flops, seconds, or normalised shares) — LPT only depends on
    relative cost.  Allocation-free unless this observation triggers a
    reschedule.
    @raise Invalid_argument on a wrong-length measurement vector. *)

val reschedule_count : t -> int

val overhead_flops : t -> float
(** Total modelled scheduling work so far, in flop units. *)

val overhead_cost_per_reschedule : Task.t array -> float
