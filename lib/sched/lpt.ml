type schedule = {
  nprocs : int;
  assignment : int array;
  loads : float array;
  makespan : float;
}

let schedule ?costs tasks ~nprocs =
  if nprocs < 1 then invalid_arg "Lpt.schedule: nprocs < 1";
  let n = Array.length tasks in
  let cost i =
    match costs with
    | Some c -> c.(i)
    | None -> tasks.(i).Task.cost
  in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare (cost b) (cost a)) order;
  let loads = Array.make nprocs 0. in
  let assignment = Array.make n 0 in
  (* Binary min-heap of processors keyed by (load, index): the root is
     the least-loaded processor with ties broken by lowest index —
     exactly what the historical linear scan picked, so assignments are
     byte-identical, in O(n log p) instead of O(n p).  The identity
     layout is a valid heap for the all-zero initial loads. *)
  let heap = Array.init nprocs Fun.id in
  let less a b = loads.(a) < loads.(b) || (loads.(a) = loads.(b) && a < b) in
  let rec sift_down i =
    let l = (2 * i) + 1 in
    let r = l + 1 in
    let m = if l < nprocs && less heap.(l) heap.(i) then l else i in
    let m = if r < nprocs && less heap.(r) heap.(m) then r else m in
    if m <> i then begin
      let t = heap.(i) in
      heap.(i) <- heap.(m);
      heap.(m) <- t;
      sift_down m
    end
  in
  Array.iter
    (fun i ->
      let best = heap.(0) in
      assignment.(i) <- best;
      loads.(best) <- loads.(best) +. cost i;
      sift_down 0)
    order;
  let makespan = Array.fold_left Float.max 0. loads in
  { nprocs; assignment; loads; makespan }

let tasks_of sched p =
  let acc = ref [] in
  Array.iteri (fun i q -> if q = p then acc := i :: !acc) sched.assignment;
  List.rev !acc

let imbalance sched =
  let total = Array.fold_left ( +. ) 0. sched.loads in
  if total = 0. then 1.
  else sched.makespan /. (total /. float_of_int sched.nprocs)
