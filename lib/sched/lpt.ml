type schedule = {
  nprocs : int;
  assignment : int array;
  loads : float array;
  makespan : float;
}

let schedule ?costs tasks ~nprocs =
  if nprocs < 1 then invalid_arg "Lpt.schedule: nprocs < 1";
  let n = Array.length tasks in
  let cost i =
    match costs with
    | Some c -> c.(i)
    | None -> tasks.(i).Task.cost
  in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare (cost b) (cost a)) order;
  let loads = Array.make nprocs 0. in
  let assignment = Array.make n 0 in
  Array.iter
    (fun i ->
      (* Least-loaded processor; ties broken by lowest index for
         determinism. *)
      let best = ref 0 in
      for p = 1 to nprocs - 1 do
        if loads.(p) < loads.(!best) then best := p
      done;
      assignment.(i) <- !best;
      loads.(!best) <- loads.(!best) +. cost i)
    order;
  let makespan = Array.fold_left Float.max 0. loads in
  { nprocs; assignment; loads; makespan }

let tasks_of sched p =
  let acc = ref [] in
  Array.iteri (fun i q -> if q = p then acc := i :: !acc) sched.assignment;
  List.rev !acc

let imbalance sched =
  let total = Array.fold_left ( +. ) 0. sched.loads in
  if total = 0. then 1.
  else sched.makespan /. (total /. float_of_int sched.nprocs)
