type t = {
  tasks : Task.t array;
  nprocs : int;
  period : int;
  smoothing : float;
  estimates : float array;
  mutable sched : Lpt.schedule;
  mutable since_resched : int;
  mutable reschedules : int;
  mutable overhead : float;
}

let overhead_cost_per_reschedule tasks =
  let n = float_of_int (Array.length tasks) in
  if n < 2. then n else n *. (Float.log n /. Float.log 2.)

let create ?(period = 10) ?(smoothing = 0.5) tasks ~nprocs =
  if period < 1 then invalid_arg "Semidynamic.create: period < 1";
  if smoothing <= 0. || smoothing > 1. then
    invalid_arg "Semidynamic.create: smoothing outside (0, 1]";
  let estimates = Array.map (fun t -> t.Task.cost) tasks in
  {
    tasks;
    nprocs;
    period;
    smoothing;
    estimates;
    sched = Lpt.schedule tasks ~nprocs;
    since_resched = 0;
    reschedules = 0;
    overhead = 0.;
  }

let current t = t.sched

let observe t measured =
  if Array.length measured <> Array.length t.tasks then
    invalid_arg "Semidynamic.observe: wrong measurement vector";
  let a = t.smoothing in
  Array.iteri
    (fun i m -> t.estimates.(i) <- (a *. m) +. ((1. -. a) *. t.estimates.(i)))
    measured;
  t.since_resched <- t.since_resched + 1;
  if t.since_resched >= t.period then begin
    t.since_resched <- 0;
    t.sched <- Lpt.schedule ~costs:t.estimates t.tasks ~nprocs:t.nprocs;
    t.reschedules <- t.reschedules + 1;
    t.overhead <- t.overhead +. overhead_cost_per_reschedule t.tasks
  end

let reschedule_count t = t.reschedules
let overhead_flops t = t.overhead
