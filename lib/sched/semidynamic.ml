type t = {
  tasks : Task.t array;
  nprocs : int;
  period : int;
  smoothing : float;
  estimates : float array;
  mutable sched : Lpt.schedule;
  mutable since_resched : int;
  mutable reschedules : int;
  mutable overhead : float;
}

let overhead_cost_per_reschedule tasks =
  let n = float_of_int (Array.length tasks) in
  if n < 2. then n else n *. (Float.log n /. Float.log 2.)

let create ?(period = 10) ?(smoothing = 0.5) ?costs tasks ~nprocs =
  if period < 1 then invalid_arg "Semidynamic.create: period < 1";
  if smoothing <= 0. || smoothing > 1. then
    invalid_arg "Semidynamic.create: smoothing outside (0, 1]";
  let estimates =
    match costs with
    | None -> Array.map (fun t -> t.Task.cost) tasks
    | Some c ->
        if Array.length c <> Array.length tasks then
          invalid_arg "Semidynamic.create: costs length mismatch";
        Array.copy c
  in
  {
    tasks;
    nprocs;
    period;
    smoothing;
    estimates;
    sched = Lpt.schedule ?costs tasks ~nprocs;
    since_resched = 0;
    reschedules = 0;
    overhead = 0.;
  }

let current t = t.sched
let estimates t = Array.copy t.estimates

(* Allocation-free in the non-rescheduling case: the EWMA update runs as
   a plain for-loop over pre-allocated arrays (a closure passed to
   [Array.iteri] would allocate on every observation, which the real
   executor's zero-allocation steady-state round forbids). *)
let observe t measured =
  if Array.length measured <> Array.length t.tasks then
    invalid_arg "Semidynamic.observe: wrong measurement vector";
  let a = t.smoothing in
  let b = 1. -. a in
  for i = 0 to Array.length measured - 1 do
    Array.unsafe_set t.estimates i
      ((a *. Array.unsafe_get measured i)
      +. (b *. Array.unsafe_get t.estimates i))
  done;
  t.since_resched <- t.since_resched + 1;
  if t.since_resched >= t.period then begin
    t.since_resched <- 0;
    t.sched <- Lpt.schedule ~costs:t.estimates t.tasks ~nprocs:t.nprocs;
    t.reschedules <- t.reschedules + 1;
    t.overhead <- t.overhead +. overhead_cost_per_reschedule t.tasks
  end

let reschedule_count t = t.reschedules
let overhead_flops t = t.overhead
