open Om_graph

type schedule = {
  nprocs : int;
  assignment : int array;
  start_time : float array;
  finish_time : float array;
  makespan : float;
}

(* Upward rank: weight of the heaviest path from v to a sink, inclusive. *)
let upward_ranks g weights =
  let n = Digraph.node_count g in
  let rank = Array.make n 0. in
  let order = List.rev (Topo.sort g) in
  List.iter
    (fun v ->
      let best =
        List.fold_left
          (fun acc w -> Float.max acc rank.(w))
          0. (Digraph.succ g v)
      in
      rank.(v) <- weights.(v) +. best)
    order;
  rank

let critical_path g ~weights =
  let ranks = upward_ranks g weights in
  Array.fold_left Float.max 0. ranks

let max_speedup g ~weights =
  let total = Array.fold_left ( +. ) 0. weights in
  let cp = critical_path g ~weights in
  if cp = 0. then 1. else total /. cp

let schedule g ~weights ~comm ~nprocs =
  let n = Digraph.node_count g in
  if Array.length weights <> n then
    invalid_arg "Dag_sched.schedule: weights length mismatch";
  if nprocs < 1 then invalid_arg "Dag_sched.schedule: nprocs < 1";
  let ranks = upward_ranks g weights in
  (* Priority: highest upward rank first (HLFET). *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare ranks.(b) ranks.(a)) order;
  let assignment = Array.make n (-1) in
  let start_time = Array.make n 0. in
  let finish_time = Array.make n 0. in
  let proc_free = Array.make nprocs 0. in
  let scheduled = Array.make n false in
  (* Process in priority order but only when all predecessors are done;
     repeatedly sweep the priority list (n is small: SCC counts). *)
  let remaining = ref n in
  while !remaining > 0 do
    let progressed = ref false in
    Array.iter
      (fun v ->
        if
          (not scheduled.(v))
          && List.for_all (fun p -> scheduled.(p)) (Digraph.pred g v)
        then begin
          (* Earliest finish over all processors, accounting for
             cross-processor communication delays. *)
          let best_p = ref 0 and best_finish = ref Float.infinity in
          for p = 0 to nprocs - 1 do
            let data_ready =
              List.fold_left
                (fun acc u ->
                  let arrival =
                    finish_time.(u)
                    +. if assignment.(u) = p then 0. else comm
                  in
                  Float.max acc arrival)
                0. (Digraph.pred g v)
            in
            let st = Float.max proc_free.(p) data_ready in
            let fin = st +. weights.(v) in
            if fin < !best_finish then begin
              best_finish := fin;
              best_p := p
            end
          done;
          let p = !best_p in
          let data_ready =
            List.fold_left
              (fun acc u ->
                let arrival =
                  finish_time.(u) +. if assignment.(u) = p then 0. else comm
                in
                Float.max acc arrival)
              0. (Digraph.pred g v)
          in
          assignment.(v) <- p;
          start_time.(v) <- Float.max proc_free.(p) data_ready;
          finish_time.(v) <- start_time.(v) +. weights.(v);
          proc_free.(p) <- finish_time.(v);
          scheduled.(v) <- true;
          decr remaining;
          progressed := true
        end)
      order;
    if not !progressed then
      invalid_arg "Dag_sched.schedule: graph has a cycle"
  done;
  let makespan = Array.fold_left Float.max 0. finish_time in
  { nprocs; assignment; start_time; finish_time; makespan }

let speedup g ~weights ~comm ~nprocs =
  let total = Array.fold_left ( +. ) 0. weights in
  let s = schedule g ~weights ~comm ~nprocs in
  if s.makespan = 0. then 1. else total /. s.makespan

let pipeline_throughput g ~weights ~nprocs =
  if nprocs < 1 then invalid_arg "Dag_sched.pipeline_throughput: nprocs < 1";
  if not (Topo.is_acyclic g) then
    invalid_arg "Dag_sched.pipeline_throughput: graph has a cycle";
  let n = Digraph.node_count g in
  if Array.length weights <> n then
    invalid_arg "Dag_sched.pipeline_throughput: weights length mismatch";
  if n = 0 then 1.
  else begin
    let total = Array.fold_left ( +. ) 0. weights in
    (* Pack the stages onto the processors (LPT); the pipeline's
       initiation interval is the heaviest processor load. *)
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> Float.compare weights.(b) weights.(a)) order;
    let loads = Array.make nprocs 0. in
    Array.iter
      (fun v ->
        let best = ref 0 in
        for p = 1 to Array.length loads - 1 do
          if loads.(p) < loads.(!best) then best := p
        done;
        loads.(!best) <- loads.(!best) +. weights.(v))
      order;
    let interval = Array.fold_left Float.max 0. loads in
    if interval = 0. then 1. else total /. interval
  end
