type t = {
  id : int;
  label : string;
  cost : float;
  reads : int list;
  writes : int list;
}

let make ~id ~label ~cost ~reads ~writes = { id; label; cost; reads; writes }

let total_cost tasks = Array.fold_left (fun acc t -> acc +. t.cost) 0. tasks
let max_cost tasks = Array.fold_left (fun acc t -> Float.max acc t.cost) 0. tasks

let validate tasks =
  Array.iteri
    (fun i t ->
      if t.id <> i then
        invalid_arg
          (Printf.sprintf "Task.validate: id %d at position %d" t.id i))
    tasks;
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun t ->
      List.iter
        (fun w ->
          if Hashtbl.mem seen w then
            invalid_arg
              (Printf.sprintf "Task.validate: output %d written twice" w)
          else Hashtbl.add seen w t.id)
        t.writes)
    tasks
