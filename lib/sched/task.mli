(** Schedulable tasks.

    A task is a unit of RHS work produced by the code generator's
    parallelisation stage (paper §3.2): a group of small assignments or a
    slice of one large equation.  Costs are in abstract flop units
    (see {!Om_expr.Cost}); the machine model converts them to time. *)

type t = {
  id : int;  (** dense, unique within a task set *)
  label : string;
  cost : float;  (** statically predicted cost, flop units *)
  reads : int list;  (** indices of state-vector entries consumed *)
  writes : int list;  (** indices of derivative-vector entries produced *)
}

val make :
  id:int -> label:string -> cost:float -> reads:int list -> writes:int list -> t

val total_cost : t array -> float
val max_cost : t array -> float

val validate : t array -> unit
(** Check ids are dense [0..n-1] and writes do not overlap between tasks.
    @raise Invalid_argument otherwise. *)
