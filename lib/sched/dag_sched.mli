(** List scheduling of a weighted task DAG onto processors, with a uniform
    communication delay between tasks placed on different processors.

    This is the machinery behind equation-system-level parallelism (paper
    §2.1): the SCC condensation of the equation dependency graph is a DAG of
    equation subsystems that "can be solved in parallel or in a pipeline".
    The scheduler is ETF-flavoured (earliest task finish on the
    highest-level-first priority order). *)

type schedule = {
  nprocs : int;
  assignment : int array;  (** node -> processor *)
  start_time : float array;
  finish_time : float array;
  makespan : float;
}

val schedule :
  Om_graph.Digraph.t ->
  weights:float array ->
  comm:float ->
  nprocs:int ->
  schedule
(** [weights.(v)] is node [v]'s execution cost; [comm] is the delay added
    when a dependence crosses processors.
    @raise Invalid_argument on cyclic graphs or size mismatches. *)

val speedup : Om_graph.Digraph.t -> weights:float array -> comm:float -> nprocs:int -> float
(** Sequential total weight divided by the scheduled makespan. *)

val critical_path : Om_graph.Digraph.t -> weights:float array -> float
(** Weight of the heaviest dependence chain: the zero-communication bound
    on parallel execution time. *)

val max_speedup : Om_graph.Digraph.t -> weights:float array -> float
(** Total weight / critical path: the paper's bound on what partitioning
    into subsystems can ever deliver. *)

val pipeline_throughput :
  Om_graph.Digraph.t -> weights:float array -> nprocs:int -> float
(** Steady-state speedup of pipelined execution of the condensation DAG
    (paper §2.1: "values produced from the solution of one system are
    continuously passed as input for the solution of another system").
    With every subsystem mapped to its own processor the initiation
    interval is the heaviest stage, so throughput-speedup is
    [total / max stage weight]; with fewer processors than stages the
    stages are packed with LPT first.
    @raise Invalid_argument on cyclic graphs or [nprocs < 1] (the same
    contract as {!schedule}, which has always raised on a non-positive
    processor count). *)
