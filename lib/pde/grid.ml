type d1 = { n : int; length : float; h : float }

let make_1d ~n ~length =
  if n < 3 then invalid_arg "Grid.make_1d: need at least 3 nodes";
  if length <= 0. then invalid_arg "Grid.make_1d: nonpositive length";
  { n; length; h = length /. float_of_int (n - 1) }

let x_of g i = float_of_int i *. g.h
let node_1d field i = Printf.sprintf "%s[%d]" field i

type d2 = { nx : int; ny : int; lx : float; ly : float; hx : float; hy : float }

let make_2d ~nx ~ny ~lx ~ly =
  if nx < 3 || ny < 3 then invalid_arg "Grid.make_2d: need at least 3x3 nodes";
  if lx <= 0. || ly <= 0. then invalid_arg "Grid.make_2d: nonpositive extent";
  {
    nx;
    ny;
    lx;
    ly;
    hx = lx /. float_of_int (nx - 1);
    hy = ly /. float_of_int (ny - 1);
  }

let xy_of g i j = (float_of_int i *. g.hx, float_of_int j *. g.hy)
let node_2d field i j = Printf.sprintf "%s[%d,%d]" field i j

let interior_1d g = List.init (g.n - 2) (fun k -> k + 1)

let interior_2d g =
  List.concat_map
    (fun i -> List.map (fun j -> (i, j)) (List.init (g.ny - 2) (fun k -> k + 1)))
    (List.init (g.nx - 2) (fun k -> k + 1))
