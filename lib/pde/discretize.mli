(** Method-of-lines discretisation: a PDE becomes a (large) flat ODE model
    that flows through the same analysis, code generation and parallel
    execution pipeline as every other model — the paper's planned PDE
    extension (§6).

    Spatial derivatives use second-order central differences; boundary
    conditions are Dirichlet (the boundary node is a constant, not a
    state) or Neumann (mirror ghost node).  The right-hand side of the
    evolution equation is supplied as a function building a symbolic
    expression from the local field value and its discrete derivatives,
    so arbitrary reaction/advection/diffusion terms are expressible. *)

type boundary =
  | Dirichlet of float
  | Neumann of float  (** prescribed outward derivative *)

type spec_1d = {
  name : string;
  field : string;  (** state name prefix, e.g. ["u"] *)
  grid : Grid.d1;
  initial : float -> float;  (** initial profile u(x, 0) *)
  rhs :
    u:Om_expr.Expr.t ->
    ux:Om_expr.Expr.t ->
    uxx:Om_expr.Expr.t ->
    x:float ->
    Om_expr.Expr.t;
      (** du/dt at one interior node, from the field value and its
          discrete first/second space derivatives *)
  left : boundary;
  right : boundary;
}

val discretize_1d : spec_1d -> Om_lang.Flat_model.t
(** One state per interior node (Dirichlet) or per non-Dirichlet node.
    States are named [field[i]] in grid order. *)

type spec_2d = {
  name2 : string;
  field2 : string;
  grid2 : Grid.d2;
  initial2 : float -> float -> float;
  rhs2 :
    u:Om_expr.Expr.t ->
    ux:Om_expr.Expr.t ->
    uy:Om_expr.Expr.t ->
    uxx:Om_expr.Expr.t ->
    uyy:Om_expr.Expr.t ->
    x:float ->
    y:float ->
    Om_expr.Expr.t;
  boundary2 : boundary;  (** applied on all four edges *)
}

val discretize_2d : spec_2d -> Om_lang.Flat_model.t

(** {1 Ready-made models} *)

val heat_1d :
  ?n:int -> ?length:float -> ?alpha:float -> unit -> Om_lang.Flat_model.t
(** Heat equation [u_t = alpha u_xx] on [0, length], Dirichlet 0 at both
    ends, initial profile [sin (pi x / length)] (fundamental mode, which
    decays at the known analytic rate — used by the tests). *)

val advection_diffusion_1d :
  ?n:int -> ?length:float -> ?speed:float -> ?alpha:float -> unit ->
  Om_lang.Flat_model.t
(** [u_t = -speed u_x + alpha u_xx] with a Gaussian initial pulse,
    Dirichlet 0 boundaries. *)

val burgers_1d :
  ?n:int -> ?length:float -> ?nu:float -> unit -> Om_lang.Flat_model.t
(** Viscous Burgers [u_t = -u u_x + nu u_xx]: the nonlinear fluid-dynamics
    flavour the paper's §6 mentions. *)

val heat_2d :
  ?nx:int -> ?ny:int -> ?alpha:float -> unit -> Om_lang.Flat_model.t
(** [u_t = alpha (u_xx + u_yy)] on the unit square, Dirichlet 0, initial
    [sin(pi x) sin(pi y)]. *)

val wave_1d :
  ?n:int -> ?length:float -> ?speed:float -> unit -> Om_lang.Flat_model.t
(** The wave equation [u_tt = c^2 u_xx], reduced to first order with a
    velocity field [v = u_t] (two states per node), Dirichlet 0 ends,
    initial displacement [sin(pi x / length)] at rest — a standing wave
    with period [2 length / c], which the tests check. *)
