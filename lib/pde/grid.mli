(** Uniform structured grids for the method-of-lines PDE extension
    (paper §6: "we have also started to extend the domain of equation
    systems for which code can be generated to partial differential
    equations, where fluid dynamics applications are common").

    A grid owns the naming of its node variables, so the discretiser, the
    flat model and the tests all agree on which state is which. *)

type d1 = {
  n : int;  (** node count including boundary nodes, >= 3 *)
  length : float;
  h : float;  (** spacing = length / (n - 1) *)
}

val make_1d : n:int -> length:float -> d1
(** @raise Invalid_argument if [n < 3] or [length <= 0]. *)

val x_of : d1 -> int -> float
(** Coordinate of node [i]. *)

val node_1d : string -> int -> string
(** [node_1d "u" 3] is the state name ["u[3]"]. *)

type d2 = {
  nx : int;
  ny : int;
  lx : float;
  ly : float;
  hx : float;
  hy : float;
}

val make_2d : nx:int -> ny:int -> lx:float -> ly:float -> d2
val xy_of : d2 -> int -> int -> float * float
val node_2d : string -> int -> int -> string
(** [node_2d "u" 2 5] is ["u[2,5]"]. *)

val interior_1d : d1 -> int list
val interior_2d : d2 -> (int * int) list
