module E = Om_expr.Expr

type boundary = Dirichlet of float | Neumann of float

type spec_1d = {
  name : string;
  field : string;
  grid : Grid.d1;
  initial : float -> float;
  rhs :
    u:E.t -> ux:E.t -> uxx:E.t -> x:float -> E.t;
  left : boundary;
  right : boundary;
}

(* Value of node [i], as an expression: interior and Neumann-boundary
   nodes are states, Dirichlet boundary nodes are constants. *)
let node_value_1d spec i =
  let g = spec.grid in
  if i = 0 then
    match spec.left with
    | Dirichlet v -> E.const v
    | Neumann _ -> E.var (Grid.node_1d spec.field 0)
  else if i = g.n - 1 then
    match spec.right with
    | Dirichlet v -> E.const v
    | Neumann _ -> E.var (Grid.node_1d spec.field (g.n - 1))
  else E.var (Grid.node_1d spec.field i)

(* Neighbour values around node [i] with ghost mirroring at Neumann
   boundaries: the ghost u[-1] = u[1] - 2 h g. *)
let neighbours_1d spec i =
  let g = spec.grid in
  let h = g.h in
  let left_of =
    if i > 0 then node_value_1d spec (i - 1)
    else
      match spec.left with
      | Neumann gv ->
          E.sub (node_value_1d spec 1) (E.const (2. *. h *. gv))
      | Dirichlet _ -> assert false
  in
  let right_of =
    if i < g.n - 1 then node_value_1d spec (i + 1)
    else
      match spec.right with
      | Neumann gv ->
          E.add [ node_value_1d spec (g.n - 2); E.const (2. *. h *. gv) ]
      | Dirichlet _ -> assert false
  in
  (left_of, right_of)

let equation_at spec i =
  let g = spec.grid in
  let h = g.h in
  let u = node_value_1d spec i in
  let um, up = neighbours_1d spec i in
  let ux = E.div (E.sub up um) (E.const (2. *. h)) in
  let uxx =
    E.div
      (E.add [ up; E.mul [ E.const (-2.); u ]; um ])
      (E.const (h *. h))
  in
  spec.rhs ~u ~ux ~uxx ~x:(Grid.x_of g i)

let discretize_1d spec : Om_lang.Flat_model.t =
  let g = spec.grid in
  let is_state i =
    if i = 0 then match spec.left with Neumann _ -> true | _ -> false
    else if i = g.n - 1 then
      match spec.right with Neumann _ -> true | _ -> false
    else true
  in
  let nodes = List.filter is_state (List.init g.n Fun.id) in
  let states =
    List.map
      (fun i -> (Grid.node_1d spec.field i, spec.initial (Grid.x_of g i)))
      nodes
  in
  let equations =
    List.map (fun i -> (Grid.node_1d spec.field i, equation_at spec i)) nodes
  in
  { Om_lang.Flat_model.name = spec.name; states; equations }

(* ------------------------------------------------------------------ *)

type spec_2d = {
  name2 : string;
  field2 : string;
  grid2 : Grid.d2;
  initial2 : float -> float -> float;
  rhs2 :
    u:E.t -> ux:E.t -> uy:E.t -> uxx:E.t -> uyy:E.t -> x:float -> y:float ->
    E.t;
  boundary2 : boundary;
}

let node_value_2d spec i j =
  let g = spec.grid2 in
  let on_boundary = i = 0 || j = 0 || i = g.nx - 1 || j = g.ny - 1 in
  if on_boundary then
    match spec.boundary2 with
    | Dirichlet v -> E.const v
    | Neumann _ ->
        invalid_arg "Discretize: 2D Neumann boundaries are not supported"
  else E.var (Grid.node_2d spec.field2 i j)

let discretize_2d spec : Om_lang.Flat_model.t =
  let g = spec.grid2 in
  (match spec.boundary2 with
  | Neumann _ ->
      invalid_arg "Discretize: 2D Neumann boundaries are not supported"
  | Dirichlet _ -> ());
  let interior = Grid.interior_2d g in
  let states =
    List.map
      (fun (i, j) ->
        let x, y = Grid.xy_of g i j in
        (Grid.node_2d spec.field2 i j, spec.initial2 x y))
      interior
  in
  let equations =
    List.map
      (fun (i, j) ->
        let u = node_value_2d spec i j in
        let uw = node_value_2d spec (i - 1) j in
        let ue = node_value_2d spec (i + 1) j in
        let us = node_value_2d spec i (j - 1) in
        let un = node_value_2d spec i (j + 1) in
        let ux = E.div (E.sub ue uw) (E.const (2. *. g.hx)) in
        let uy = E.div (E.sub un us) (E.const (2. *. g.hy)) in
        let uxx =
          E.div
            (E.add [ ue; E.mul [ E.const (-2.); u ]; uw ])
            (E.const (g.hx *. g.hx))
        in
        let uyy =
          E.div
            (E.add [ un; E.mul [ E.const (-2.); u ]; us ])
            (E.const (g.hy *. g.hy))
        in
        let x, y = Grid.xy_of g i j in
        (Grid.node_2d spec.field2 i j, spec.rhs2 ~u ~ux ~uy ~uxx ~uyy ~x ~y))
      interior
  in
  { Om_lang.Flat_model.name = spec.name2; states; equations }

(* ------------------------------------------------------------------ *)

let heat_1d ?(n = 41) ?(length = 1.) ?(alpha = 0.1) () =
  discretize_1d
    {
      name = "Heat1D";
      field = "u";
      grid = Grid.make_1d ~n ~length;
      initial = (fun x -> Float.sin (Float.pi *. x /. length));
      rhs = (fun ~u:_ ~ux:_ ~uxx ~x:_ -> E.mul [ E.const alpha; uxx ]);
      left = Dirichlet 0.;
      right = Dirichlet 0.;
    }

let advection_diffusion_1d ?(n = 81) ?(length = 1.) ?(speed = 1.)
    ?(alpha = 0.01) () =
  discretize_1d
    {
      name = "AdvectionDiffusion1D";
      field = "u";
      grid = Grid.make_1d ~n ~length;
      initial =
        (fun x ->
          let d = (x -. (0.25 *. length)) /. (0.05 *. length) in
          Float.exp (Float.neg (d *. d)));
      rhs =
        (fun ~u:_ ~ux ~uxx ~x:_ ->
          E.add
            [ E.mul [ E.const (Float.neg speed); ux ];
              E.mul [ E.const alpha; uxx ] ]);
      left = Dirichlet 0.;
      right = Dirichlet 0.;
    }

let burgers_1d ?(n = 81) ?(length = 1.) ?(nu = 0.01) () =
  discretize_1d
    {
      name = "Burgers1D";
      field = "u";
      grid = Grid.make_1d ~n ~length;
      initial = (fun x -> Float.sin (2. *. Float.pi *. x /. length));
      rhs =
        (fun ~u ~ux ~uxx ~x:_ ->
          E.add [ E.mul [ E.neg u; ux ]; E.mul [ E.const nu; uxx ] ]);
      left = Dirichlet 0.;
      right = Dirichlet 0.;
    }

let wave_1d ?(n = 41) ?(length = 1.) ?(speed = 1.) () =
  let g = Grid.make_1d ~n ~length in
  let interior = Grid.interior_1d g in
  let u i = Grid.node_1d "u" i in
  let v i = Grid.node_1d "v" i in
  let u_value i =
    if i = 0 || i = g.n - 1 then E.zero else E.var (u i)
  in
  let states =
    List.concat_map
      (fun i ->
        let x = Grid.x_of g i in
        [ (u i, Float.sin (Float.pi *. x /. length)); (v i, 0.) ])
      interior
  in
  let c2_h2 = speed *. speed /. (g.h *. g.h) in
  let equations =
    List.concat_map
      (fun i ->
        let lap =
          E.mul
            [
              E.const c2_h2;
              E.add
                [ u_value (i + 1); E.mul [ E.const (-2.); u_value i ];
                  u_value (i - 1) ];
            ]
        in
        [ (u i, E.var (v i)); (v i, lap) ])
      interior
  in
  { Om_lang.Flat_model.name = "Wave1D"; states; equations }

let heat_2d ?(nx = 17) ?(ny = 17) ?(alpha = 0.1) () =
  discretize_2d
    {
      name2 = "Heat2D";
      field2 = "u";
      grid2 = Grid.make_2d ~nx ~ny ~lx:1. ~ly:1.;
      initial2 =
        (fun x y -> Float.sin (Float.pi *. x) *. Float.sin (Float.pi *. y));
      rhs2 =
        (fun ~u:_ ~ux:_ ~uy:_ ~uxx ~uyy ~x:_ ~y:_ ->
          E.mul [ E.const alpha; E.add [ uxx; uyy ] ]);
      boundary2 = Dirichlet 0.;
    }
