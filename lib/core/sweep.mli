(** Parameter sweeps: run the same model across a range of parameter
    values and collect a scalar metric from each simulation — the
    "evaluation of numerical experiments" workflow of paper §1.1. *)

type point = {
  value : float;  (** the swept parameter's value *)
  metric : float;
  steps : int;
  rhs_calls : int;
}

val run :
  source:string ->
  cls:string ->
  param:string ->
  values:float list ->
  tend:float ->
  ?atol:float ->
  ?rtol:float ->
  metric:(Om_ode.Odesys.t -> Om_ode.Odesys.trajectory -> float) ->
  unit ->
  point list
(** For each value: override the class parameter, re-flatten, integrate
    with the LSODA-style solver from the model's initial state to [tend],
    and evaluate [metric] on the trajectory.
    @raise Om_lang.Override.Unknown_target / [Om_lang.Flatten.Error]. *)

val final_value : string -> Om_ode.Odesys.t -> Om_ode.Odesys.trajectory -> float
(** Convenience metric: the final value of a named state. *)

val to_series : string -> point list -> Om_viz.Plot.series
(** Plot-ready (value, metric) series. *)
