(** Parameter sweeps and Monte Carlo ensembles: run the same model
    across many parameter values and collect a scalar metric from each
    simulation — the "evaluation of numerical experiments" workflow of
    paper §1.1, scaled with the batched ensemble engine.

    The fast path compiles the model {e once}: the swept parameter is
    promoted to a frozen state variable
    ({!Om_lang.Override.promote_parameter}), each value becomes one
    member of a lockstep ensemble ({!Om_ode.Ensemble}) whose initial
    state carries the parameter value, and the whole batch integrates
    through the batched register VM
    ({!Om_codegen.Batch_backend}), optionally sliced across worker
    domains.  When promotion would change the model's meaning (the
    parameter is structurally rebound, or the promoted model no longer
    elaborates), the sweep falls back to the legacy path that
    re-flattens and integrates every value separately. *)

type point = {
  value : float;  (** the swept parameter's value *)
  metric : float;
  steps : int;
  rhs_calls : int;
}

val run :
  source:string ->
  cls:string ->
  param:string ->
  values:float list ->
  tend:float ->
  ?atol:float ->
  ?rtol:float ->
  metric:(Om_ode.Odesys.t -> Om_ode.Odesys.trajectory -> float) ->
  unit ->
  point list
(** Sweep [cls.param] over [values], integrating from the model's
    initial state to [tend], and evaluate [metric] on each trajectory.
    Uses the compile-once ensemble path when the parameter promotes,
    the per-value legacy path otherwise.
    @raise Om_lang.Override.Unknown_target / [Om_lang.Flatten.Error]. *)

(** {1 Compile-once API} *)

type compiled
(** A model compiled once with its swept parameters promoted to state
    slots: reusable across any number of batches. *)

type prepared =
  | Promoted of compiled
  | Legacy of string
      (** promotion refused; the payload says why (structural rebinding
          or an elaboration failure of the promoted model) *)

val prepare : source:string -> cls:string -> param:string -> prepared
(** Parse, promote, flatten and compile once.
    @raise Om_lang.Override.Unknown_target on a bad class/parameter
    name (never demoted to [Legacy]). *)

val prepare_many : source:string -> (string * string) list -> prepared
(** Like {!prepare} for several [(class, parameter)] targets at once —
    all promote, or the whole preparation is [Legacy]. *)

val run_compiled :
  ?domains:int ->
  compiled ->
  values:float list ->
  tend:float ->
  ?atol:float ->
  ?rtol:float ->
  metric:(Om_ode.Odesys.t -> Om_ode.Odesys.trajectory -> float) ->
  unit ->
  point list
(** Integrate one batch over a prepared model: one ensemble member per
    value, adaptive lockstep RKF45, RHS rounds optionally split across
    [domains] worker domains (default 1, no pool). *)

(** {1 Monte Carlo} *)

type dist =
  | Uniform of float * float  (** inclusive lower bound, upper bound *)
  | Normal of float * float  (** mean, standard deviation *)

type mc_sample = {
  draws : float array;  (** one value per spec, in spec order *)
  mc_metric : float;
  mc_steps : int;
  mc_rhs_calls : int;
}

type mc_report = {
  samples : mc_sample list;
  mean : float;
  stddev : float;  (** population standard deviation of the metric *)
  promoted : bool;  (** [false] when the legacy fallback ran *)
}

val monte_carlo :
  source:string ->
  specs:(string * string * dist) list ->
  samples:int ->
  seed:int ->
  tend:float ->
  ?atol:float ->
  ?rtol:float ->
  ?domains:int ->
  metric:(Om_ode.Odesys.t -> Om_ode.Odesys.trajectory -> float) ->
  unit ->
  mc_report
(** Seeded Monte Carlo over [(class, parameter, distribution)] specs:
    [samples] parameter sets are drawn deterministically (fixed draw
    order — per sample, then per spec — from [Random.State.make
    [|seed|]]), integrated as one ensemble when every spec promotes,
    and summarised.  The same seed yields the same draws, and therefore
    the same report, on every run.
    @raise Om_lang.Override.Unknown_target on a bad spec target.
    @raise Invalid_argument on [samples < 1] or an empty spec list. *)

val final_value : string -> Om_ode.Odesys.t -> Om_ode.Odesys.trajectory -> float
(** Convenience metric: the final value of a named state. *)

val to_series : string -> point list -> Om_viz.Plot.series
(** Plot-ready (value, metric) series. *)
