type scheduling =
  | Static
  | Static_with of float array
  | Semidynamic of int

type topology = Flat | Tree of int
type execution = Simulated | Real_domains of int

type config = {
  machine : Om_machine.Machine.t;
  nworkers : int;
  strategy : Om_machine.Supervisor.comm_strategy;
  scheduling : scheduling;
  topology : topology;
  execution : execution;
  guard : bool;
  faults : Om_guard.Fault_plan.t option;
  barrier_deadline : float;
  retry_budget : int;
  cancel : Om_guard.Cancel.t option;
  jac_mode : Om_ode.Odesys.jac_mode;
}

let default_config =
  {
    machine = Om_machine.Machine.sparccenter_2000;
    nworkers = 1;
    strategy = Om_machine.Supervisor.Broadcast_state;
    scheduling = Static;
    topology = Flat;
    execution = Simulated;
    guard = true;
    faults = None;
    barrier_deadline = 0.;
    retry_budget = 8;
    cancel = None;
    jac_mode = Om_ode.Odesys.Auto;
  }

type solver = Rk4 of float | Rkf45 | Lsoda

type report = {
  trajectory : Om_ode.Odesys.trajectory;
  rhs_calls : int;
  sim_seconds : float;
  rhs_calls_per_sec : float;
  sched_overhead_seconds : float;
  supervisor_comm_seconds : float;
  worker_utilization : float;
  worker_compute_seconds : float array;
  worker_wait_seconds : float array;
  reschedules : int;
  solver_steps : int;
  retries : int;
  faults_injected : int;
  degradations : Om_guard.Om_error.degradation list;
  jac_mode : string;
  jac_sparsity : (int * int) option;
  jac_calls : int;
}

let task_arrays (r : Om_codegen.Pipeline.result) =
  let reads = Array.map (fun t -> t.Om_sched.Task.reads) r.tasks in
  let writes = Array.map (fun t -> t.Om_sched.Task.writes) r.tasks in
  (reads, writes)

(* Simulated seconds for one round given per-task costs and a schedule. *)
let simulate_round config (r : Om_codegen.Pipeline.result) assignment costs =
  let reads, writes = task_arrays r in
  let m = config.machine in
  let round =
    match config.topology with
    | Tree fanout when config.nworkers > 0 ->
        Om_machine.Supervisor.tree_round m ~fanout ~nworkers:config.nworkers
          ~assignment ~task_flops:costs ~task_reads:reads ~task_writes:writes
          ~state_dim:r.compiled.dim
    | Flat | Tree _ ->
        Om_machine.Supervisor.round m ~nworkers:config.nworkers ~assignment
          ~task_flops:costs ~task_reads:reads ~task_writes:writes
          ~state_dim:r.compiled.dim ~strategy:config.strategy
  in
  (* The supervisor folds the partials into the derivatives after the
     gather phase. *)
  let epilogue = r.compiled.epilogue_flops *. m.flop_time in
  let utilization =
    if config.nworkers = 0 || round.duration <= 0. then 1.
    else
      Array.fold_left ( +. ) 0. round.worker_compute
      /. (float_of_int config.nworkers *. round.duration)
  in
  (round.duration +. epilogue, round.supervisor_busy, utilization,
   round.worker_compute)

let solve ?max_retries ?jac_mode ?jac_batch solver sys ~t0 ~tend ~y0 =
  match solver with
  | Rk4 h ->
      Om_ode.Rk.integrate_fixed ?max_retries Om_ode.Rk.rk4 sys ~t0 ~y0 ~tend ~h
  | Rkf45 -> Om_ode.Rk.rkf45 ?max_retries sys ~t0 ~y0 ~tend
  | Lsoda ->
      (Om_ode.Lsoda.integrate ?max_retries ?jac_mode ?jac_batch sys ~t0 ~y0
         ~tend)
        .trajectory

(* The structural Jacobian pattern of the model, attached to every system
   the runtime builds: the compiled RHS evaluates the same equations, so
   the symbolic read sets are its exact sparsity, and the stiff solvers
   can take the colored-column sparse path under [config.jac_mode]. *)
let model_sparsity (r : Om_codegen.Pipeline.result) =
  Om_ode.Odesys.pattern_of_equations r.model.equations

(* The post-round finite guard, armed by [config.guard]: scans the
   derivative vector after every RHS evaluation and raises a typed
   [Nonfinite_output] naming the flattened equation, which the solvers
   above answer with retry/backoff. *)
let guard_of config (compiled : Om_codegen.Bytecode_backend.t) =
  if config.guard then
    Some
      (Om_guard.Finite_guard.create ~names:compiled.state_names
         ~dim:compiled.dim)
  else None

let[@inline] guard_check guard ~time ydot =
  match guard with
  | None -> ()
  | Some g -> Om_guard.Finite_guard.check g ~time ydot

(* Cooperative cancellation/deadline poll, once per RHS round — the
   natural safe point: no partial round is ever observed, and the
   non-retryable fault aborts the solver immediately
   (Om_error.retryable). *)
let[@inline] cancel_check config =
  match config.cancel with
  | None -> ()
  | Some c -> Om_guard.Cancel.check c

(* Real execution: the same LPT schedule as the simulator, but the round
   runs on [nworkers] domains and the clock is the wall clock.  Under
   [Semidynamic period] the measured per-task times of every round feed
   the paper's §3.2.3 rescheduler, and rebuilt LPT schedules are swapped
   into the live executor between rounds (Par_exec.create_measured) —
   trajectories stay bit-identical regardless, because tasks write
   disjoint output slots and the epilogue folds on the supervisor in a
   fixed order.  The report's overhead/utilization fields are measured
   per-worker telemetry (Om_parallel.Round_stats), not placeholders. *)
let execute_real config ~nworkers ~solver ~t0 ~tend
    (r : Om_codegen.Pipeline.result) =
  let compiled = r.compiled in
  let guard = guard_of config compiled in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  (* Degradation events accumulate across the ladder: spawn-time drops
     (retry with one worker fewer), mid-run drops (a stalled worker's
     tasks are LPT-reassigned to the survivors), and the final fall to
     sequential evaluation on the supervisor. *)
  let degradations = ref [] in
  (* Rung 0 of the ladder: no live workers left, so the supervisor
     evaluates the compiled tasks itself — still guarded, still the
     same bytecode, so the trajectory is bit-identical. *)
  let run_sequential () =
    let f t y ydot =
      cancel_check config;
      Om_codegen.Bytecode_backend.rhs_fn compiled t y ydot;
      guard_check guard ~time:t ydot
    in
    let sys =
      Om_ode.Odesys.make
        ~names:(Array.copy compiled.state_names)
        ~sparsity:(model_sparsity r) ~dim:compiled.dim f
    in
    let start = Unix.gettimeofday () in
    let trajectory =
      solve ~max_retries:config.retry_budget ~jac_mode:config.jac_mode solver
        sys ~t0 ~tend ~y0
    in
    let wall = Unix.gettimeofday () -. start in
    let rhs_calls = sys.counters.rhs_calls in
    let jac_mode, jac_sparsity =
      Om_ode.Jacobian.mode_stats ~jac_mode:config.jac_mode sys
    in
    {
      trajectory;
      rhs_calls;
      sim_seconds = wall;
      rhs_calls_per_sec =
        (if wall > 0. then float_of_int rhs_calls /. wall else 0.);
      sched_overhead_seconds = 0.;
      supervisor_comm_seconds = 0.;
      worker_utilization = 1.;
      worker_compute_seconds = [||];
      worker_wait_seconds = [||];
      reschedules = 0;
      solver_steps = sys.counters.steps;
      retries = sys.counters.retries;
      faults_injected =
        (match config.faults with
        | None -> 0
        | Some p -> Om_guard.Fault_plan.injected p);
      degradations = List.rev !degradations;
      jac_mode;
      jac_sparsity;
      jac_calls = sys.counters.jac_calls;
    }
  in
  let run_with nworkers =
    let costs =
      match config.scheduling with
      | Static_with costs -> costs
      | Static | Semidynamic _ ->
          Om_codegen.Bytecode_backend.task_costs_static compiled
    in
    let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:nworkers in
    let reads, writes = task_arrays r in
    let desc =
      Om_machine.Round_desc.make ~assignment:sched.assignment
        ~task_flops:costs ~task_reads:reads ~task_writes:writes
        ~state_dim:compiled.dim
    in
    let semidynamic =
      match config.scheduling with
      | Semidynamic period -> Some period
      | Static | Static_with _ -> None
    in
    let barrier_deadline =
      if config.barrier_deadline > 0. then Some config.barrier_deadline
      else None
    in
    Om_parallel.Par_exec.with_measured ?barrier_deadline ?fault:config.faults
      ?semidynamic ~nworkers ~tasks:r.tasks desc compiled
    @@ fun m ->
    let exec = Om_parallel.Par_exec.executor m in
    let f t y ydot =
      cancel_check config;
      Om_parallel.Par_exec.measured_rhs_fn m t y ydot;
      (* A barrier-deadline overrun recorded by the pool steps the
         ladder: drop the stalled worker (its tasks go to the survivors
         by LPT; trajectories stay bit-identical because output slots
         are disjoint and the epilogue folds in fixed order).  The round
         itself always completed — detection is advisory — so [ydot] is
         already consistent. *)
      (match Om_parallel.Par_exec.take_stall exec with
      | None -> ()
      | Some cause ->
          let live = Om_parallel.Par_exec.live_workers exec in
          let dropped =
            match cause with
            | Om_guard.Om_error.Worker_stall { worker; _ } when live > 1 ->
                Om_parallel.Par_exec.drop_worker exec worker;
                Some worker
            | _ -> None
          in
          let at_round =
            match cause with
            | Om_guard.Om_error.Worker_stall { round; _ }
            | Om_guard.Om_error.Barrier_timeout { round; _ } ->
                round
            | _ -> Om_parallel.Par_exec.rounds exec
          in
          degradations :=
            {
              Om_guard.Om_error.at_round;
              worker = (match dropped with Some w -> w | None -> -1);
              remaining =
                (match dropped with Some _ -> live - 1 | None -> live);
              cause;
            }
            :: !degradations);
      guard_check guard ~time:t ydot
    in
    let sys =
      Om_ode.Odesys.make
        ~names:(Array.copy compiled.state_names)
        ~sparsity:(model_sparsity r) ~dim:compiled.dim f
    in
    let jac_mode, jac_sparsity =
      Om_ode.Jacobian.mode_stats ~jac_mode:config.jac_mode sys
    in
    (* When the stiff path will take the sparse route, its colored
       finite-difference column groups are themselves independent RHS
       evaluations — spread them over a second pool of scratch clones
       (supervisor/worker again, one level down). *)
    let par_jac =
      match (solver, jac_mode) with
      | Lsoda, "sparse" when nworkers >= 2 ->
          Some (Om_parallel.Par_jac.create ~nworkers r)
      | _ -> None
    in
    let start = Unix.gettimeofday () in
    let trajectory =
      Fun.protect
        ~finally:(fun () ->
          match par_jac with
          | Some pj -> Om_parallel.Par_jac.shutdown pj
          | None -> ())
        (fun () ->
          solve ~max_retries:config.retry_budget ~jac_mode:config.jac_mode
            ?jac_batch:(Option.map Om_parallel.Par_jac.batch_rhs par_jac)
            solver sys ~t0 ~tend ~y0)
    in
    let wall = Unix.gettimeofday () -. start in
    let rhs_calls = sys.counters.rhs_calls in
    let st = Om_parallel.Par_exec.stats m in
    {
      trajectory;
      rhs_calls;
      sim_seconds = wall;
      rhs_calls_per_sec =
        (if wall > 0. then float_of_int rhs_calls /. wall else 0.);
      sched_overhead_seconds = Om_parallel.Round_stats.reschedule_seconds st;
      supervisor_comm_seconds = Om_parallel.Round_stats.barrier_seconds st;
      worker_utilization = Om_parallel.Round_stats.utilization st;
      worker_compute_seconds = Om_parallel.Round_stats.worker_compute st;
      worker_wait_seconds = Om_parallel.Round_stats.worker_wait st;
      reschedules = Om_parallel.Round_stats.reschedules st;
      solver_steps = sys.counters.steps;
      retries = sys.counters.retries;
      faults_injected = Om_parallel.Par_exec.faults_injected exec;
      degradations = List.rev !degradations;
      jac_mode;
      jac_sparsity;
      jac_calls = sys.counters.jac_calls;
    }
  in
  (* Spawn-failure rungs: each failed pool construction retries with one
     worker fewer, recording the drop, until sequential evaluation. *)
  let rec attempt nworkers =
    if nworkers < 1 then run_sequential ()
    else
      match run_with nworkers with
      | report -> report
      | exception
          Om_guard.Om_error.Error
            (Om_guard.Om_error.Spawn_failure { worker; _ } as cause) ->
          degradations :=
            {
              Om_guard.Om_error.at_round = 0;
              worker;
              remaining = nworkers - 1;
              cause;
            }
            :: !degradations;
          attempt (nworkers - 1)
  in
  attempt nworkers

let execute_simulated ?(config = default_config) ?solver ?(t0 = 0.) ~tend
    (r : Om_codegen.Pipeline.result) =
  let compiled = r.compiled in
  let n_tasks = Array.length compiled.tasks in
  let sim_seconds = ref 0. in
  let comm_seconds = ref 0. in
  let sched_overhead = ref 0. in
  let utilization_sum = ref 0. in
  let rounds = ref 0 in
  let measured = Array.make n_tasks 0. in
  let semidyn =
    match config.scheduling with
    | Static | Static_with _ -> None
    | Semidynamic period ->
        Some
          (Om_sched.Semidynamic.create ~period r.tasks
             ~nprocs:(max 1 config.nworkers))
  in
  let static_sched =
    match config.scheduling with
    | Static_with costs ->
        Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:(max 1 config.nworkers)
    | Static | Semidynamic _ ->
        Om_sched.Lpt.schedule r.tasks ~nprocs:(max 1 config.nworkers)
  in
  let overhead_per_resched =
    Om_sched.Semidynamic.overhead_cost_per_reschedule r.tasks
    *. config.machine.flop_time
  in
  let reschedules_seen = ref 0 in
  let compute_tot = Array.make (max 0 config.nworkers) 0. in
  let wait_tot = Array.make (max 0 config.nworkers) 0. in
  let guard = guard_of config compiled in
  let round_idx = ref 0 in
  let f t y ydot =
    cancel_check config;
    compiled.set_state t y;
    incr round_idx;
    (* Execute the tasks for real, measuring branch-resolved costs. *)
    for i = 0 to n_tasks - 1 do
      measured.(i) <- compiled.tasks.(i).measured_eval ();
      (* Chaos under simulation: task poisons land exactly as they
         would on a real worker, so solver-backoff behaviour can be
         tested without domains.  (Delays and spawn failures have no
         simulated analogue and are ignored here.) *)
      match config.faults with
      | None -> ()
      | Some plan ->
          let p =
            Om_guard.Fault_plan.task_poison plan ~round:!round_idx ~task:i
          in
          if p <> 0. then
            List.iter
              (fun slot -> compiled.out.(slot) <- p)
              compiled.tasks.(i).writes
    done;
    compiled.run_epilogue ();
    Array.blit compiled.out 0 ydot 0 compiled.dim;
    guard_check guard ~time:t ydot;
    (* Charge simulated machine time for the round. *)
    let sched =
      match semidyn with
      | None -> static_sched
      | Some sd -> Om_sched.Semidynamic.current sd
    in
    let duration, busy, util, worker_compute =
      simulate_round config r sched.assignment measured
    in
    sim_seconds := !sim_seconds +. duration;
    comm_seconds := !comm_seconds +. busy;
    utilization_sum := !utilization_sum +. util;
    if Array.length worker_compute = Array.length compute_tot then
      Array.iteri
        (fun w c ->
          compute_tot.(w) <- compute_tot.(w) +. c;
          wait_tot.(w) <- wait_tot.(w) +. Float.max 0. (duration -. c))
        worker_compute;
    incr rounds;
    (match semidyn with
    | None -> ()
    | Some sd ->
        Om_sched.Semidynamic.observe sd measured;
        let n = Om_sched.Semidynamic.reschedule_count sd in
        if n > !reschedules_seen then begin
          sched_overhead :=
            !sched_overhead
            +. (float_of_int (n - !reschedules_seen) *. overhead_per_resched);
          reschedules_seen := n
        end)
  in
  let sys =
    Om_ode.Odesys.make ~names:(Array.copy compiled.state_names)
      ~sparsity:(model_sparsity r) ~dim:compiled.dim f
  in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  let solver =
    match solver with Some s -> s | None -> Rk4 ((tend -. t0) /. 400.)
  in
  let trajectory =
    solve ~max_retries:config.retry_budget ~jac_mode:config.jac_mode solver
      sys ~t0 ~tend ~y0
  in
  let rhs_calls = sys.counters.rhs_calls in
  let total = !sim_seconds +. !sched_overhead in
  let jac_mode, jac_sparsity =
    Om_ode.Jacobian.mode_stats ~jac_mode:config.jac_mode sys
  in
  {
    trajectory;
    rhs_calls;
    sim_seconds = total;
    rhs_calls_per_sec = (if total > 0. then float_of_int rhs_calls /. total else 0.);
    sched_overhead_seconds = !sched_overhead;
    supervisor_comm_seconds = !comm_seconds;
    worker_utilization =
      (if !rounds = 0 then 1. else !utilization_sum /. float_of_int !rounds);
    worker_compute_seconds = compute_tot;
    worker_wait_seconds = wait_tot;
    reschedules = !reschedules_seen;
    solver_steps = sys.counters.steps;
    retries = sys.counters.retries;
    faults_injected =
      (match config.faults with
      | None -> 0
      | Some p -> Om_guard.Fault_plan.injected p);
    degradations = [];
    jac_mode;
    jac_sparsity;
    jac_calls = sys.counters.jac_calls;
  }

let execute ?(config = default_config) ?solver ?(t0 = 0.) ~tend r =
  match config.execution with
  | Simulated -> execute_simulated ~config ?solver ~t0 ~tend r
  | Real_domains n ->
      let solver =
        match solver with Some s -> s | None -> Rk4 ((tend -. t0) /. 400.)
      in
      execute_real config ~nworkers:n ~solver ~t0 ~tend r

let round_seconds ?(config = default_config) ?costs
    (r : Om_codegen.Pipeline.result) =
  let costs =
    match costs with
    | Some c -> c
    | None -> Om_codegen.Bytecode_backend.task_costs_static r.compiled
  in
  let sched =
    Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:(max 1 config.nworkers)
  in
  let duration, _, _, _ = simulate_round config r sched.assignment costs in
  duration

let speedup ?(strategy = Om_machine.Supervisor.Broadcast_state) ~machine
    ~nworkers r =
  let base =
    round_seconds
      ~config:{ default_config with machine; nworkers = 0; strategy }
      r
  in
  let par =
    round_seconds ~config:{ default_config with machine; nworkers; strategy } r
  in
  base /. par
