type scheduling =
  | Static
  | Static_with of float array
  | Semidynamic of int

type topology = Flat | Tree of int
type execution = Simulated | Real_domains of int

type config = {
  machine : Om_machine.Machine.t;
  nworkers : int;
  strategy : Om_machine.Supervisor.comm_strategy;
  scheduling : scheduling;
  topology : topology;
  execution : execution;
}

let default_config =
  {
    machine = Om_machine.Machine.sparccenter_2000;
    nworkers = 1;
    strategy = Om_machine.Supervisor.Broadcast_state;
    scheduling = Static;
    topology = Flat;
    execution = Simulated;
  }

type solver = Rk4 of float | Rkf45 | Lsoda

type report = {
  trajectory : Om_ode.Odesys.trajectory;
  rhs_calls : int;
  sim_seconds : float;
  rhs_calls_per_sec : float;
  sched_overhead_seconds : float;
  supervisor_comm_seconds : float;
  worker_utilization : float;
  worker_compute_seconds : float array;
  worker_wait_seconds : float array;
  reschedules : int;
  solver_steps : int;
}

let task_arrays (r : Om_codegen.Pipeline.result) =
  let reads = Array.map (fun t -> t.Om_sched.Task.reads) r.tasks in
  let writes = Array.map (fun t -> t.Om_sched.Task.writes) r.tasks in
  (reads, writes)

(* Simulated seconds for one round given per-task costs and a schedule. *)
let simulate_round config (r : Om_codegen.Pipeline.result) assignment costs =
  let reads, writes = task_arrays r in
  let m = config.machine in
  let round =
    match config.topology with
    | Tree fanout when config.nworkers > 0 ->
        Om_machine.Supervisor.tree_round m ~fanout ~nworkers:config.nworkers
          ~assignment ~task_flops:costs ~task_reads:reads ~task_writes:writes
          ~state_dim:r.compiled.dim
    | Flat | Tree _ ->
        Om_machine.Supervisor.round m ~nworkers:config.nworkers ~assignment
          ~task_flops:costs ~task_reads:reads ~task_writes:writes
          ~state_dim:r.compiled.dim ~strategy:config.strategy
  in
  (* The supervisor folds the partials into the derivatives after the
     gather phase. *)
  let epilogue = r.compiled.epilogue_flops *. m.flop_time in
  let utilization =
    if config.nworkers = 0 || round.duration <= 0. then 1.
    else
      Array.fold_left ( +. ) 0. round.worker_compute
      /. (float_of_int config.nworkers *. round.duration)
  in
  (round.duration +. epilogue, round.supervisor_busy, utilization,
   round.worker_compute)

let solve solver sys ~t0 ~tend ~y0 =
  match solver with
  | Rk4 h -> Om_ode.Rk.integrate_fixed Om_ode.Rk.rk4 sys ~t0 ~y0 ~tend ~h
  | Rkf45 -> Om_ode.Rk.rkf45 sys ~t0 ~y0 ~tend
  | Lsoda -> (Om_ode.Lsoda.integrate sys ~t0 ~y0 ~tend).trajectory

(* Real execution: the same LPT schedule as the simulator, but the round
   runs on [nworkers] domains and the clock is the wall clock.  Under
   [Semidynamic period] the measured per-task times of every round feed
   the paper's §3.2.3 rescheduler, and rebuilt LPT schedules are swapped
   into the live executor between rounds (Par_exec.create_measured) —
   trajectories stay bit-identical regardless, because tasks write
   disjoint output slots and the epilogue folds on the supervisor in a
   fixed order.  The report's overhead/utilization fields are measured
   per-worker telemetry (Om_parallel.Round_stats), not placeholders. *)
let execute_real config ~nworkers ~solver ~t0 ~tend
    (r : Om_codegen.Pipeline.result) =
  let compiled = r.compiled in
  let costs =
    match config.scheduling with
    | Static_with costs -> costs
    | Static | Semidynamic _ ->
        Om_codegen.Bytecode_backend.task_costs_static compiled
  in
  let sched = Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:nworkers in
  let reads, writes = task_arrays r in
  let desc =
    Om_machine.Round_desc.make ~assignment:sched.assignment ~task_flops:costs
      ~task_reads:reads ~task_writes:writes ~state_dim:compiled.dim
  in
  let semidynamic =
    match config.scheduling with
    | Semidynamic period -> Some period
    | Static | Static_with _ -> None
  in
  Om_parallel.Par_exec.with_measured ?semidynamic ~nworkers ~tasks:r.tasks
    desc compiled
  @@ fun m ->
  let sys =
    Om_ode.Odesys.make
      ~names:(Array.copy compiled.state_names)
      ~dim:compiled.dim
      (Om_parallel.Par_exec.measured_rhs_fn m)
  in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  let start = Unix.gettimeofday () in
  let trajectory = solve solver sys ~t0 ~tend ~y0 in
  let wall = Unix.gettimeofday () -. start in
  let rhs_calls = sys.counters.rhs_calls in
  let st = Om_parallel.Par_exec.stats m in
  {
    trajectory;
    rhs_calls;
    sim_seconds = wall;
    rhs_calls_per_sec =
      (if wall > 0. then float_of_int rhs_calls /. wall else 0.);
    sched_overhead_seconds = Om_parallel.Round_stats.reschedule_seconds st;
    supervisor_comm_seconds = Om_parallel.Round_stats.barrier_seconds st;
    worker_utilization = Om_parallel.Round_stats.utilization st;
    worker_compute_seconds = Om_parallel.Round_stats.worker_compute st;
    worker_wait_seconds = Om_parallel.Round_stats.worker_wait st;
    reschedules = Om_parallel.Round_stats.reschedules st;
    solver_steps = sys.counters.steps;
  }

let execute_simulated ?(config = default_config) ?solver ?(t0 = 0.) ~tend
    (r : Om_codegen.Pipeline.result) =
  let compiled = r.compiled in
  let n_tasks = Array.length compiled.tasks in
  let sim_seconds = ref 0. in
  let comm_seconds = ref 0. in
  let sched_overhead = ref 0. in
  let utilization_sum = ref 0. in
  let rounds = ref 0 in
  let measured = Array.make n_tasks 0. in
  let semidyn =
    match config.scheduling with
    | Static | Static_with _ -> None
    | Semidynamic period ->
        Some
          (Om_sched.Semidynamic.create ~period r.tasks
             ~nprocs:(max 1 config.nworkers))
  in
  let static_sched =
    match config.scheduling with
    | Static_with costs ->
        Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:(max 1 config.nworkers)
    | Static | Semidynamic _ ->
        Om_sched.Lpt.schedule r.tasks ~nprocs:(max 1 config.nworkers)
  in
  let overhead_per_resched =
    Om_sched.Semidynamic.overhead_cost_per_reschedule r.tasks
    *. config.machine.flop_time
  in
  let reschedules_seen = ref 0 in
  let compute_tot = Array.make (max 0 config.nworkers) 0. in
  let wait_tot = Array.make (max 0 config.nworkers) 0. in
  let f t y ydot =
    compiled.set_state t y;
    (* Execute the tasks for real, measuring branch-resolved costs. *)
    for i = 0 to n_tasks - 1 do
      measured.(i) <- compiled.tasks.(i).measured_eval ()
    done;
    compiled.run_epilogue ();
    Array.blit compiled.out 0 ydot 0 compiled.dim;
    (* Charge simulated machine time for the round. *)
    let sched =
      match semidyn with
      | None -> static_sched
      | Some sd -> Om_sched.Semidynamic.current sd
    in
    let duration, busy, util, worker_compute =
      simulate_round config r sched.assignment measured
    in
    sim_seconds := !sim_seconds +. duration;
    comm_seconds := !comm_seconds +. busy;
    utilization_sum := !utilization_sum +. util;
    if Array.length worker_compute = Array.length compute_tot then
      Array.iteri
        (fun w c ->
          compute_tot.(w) <- compute_tot.(w) +. c;
          wait_tot.(w) <- wait_tot.(w) +. Float.max 0. (duration -. c))
        worker_compute;
    incr rounds;
    (match semidyn with
    | None -> ()
    | Some sd ->
        Om_sched.Semidynamic.observe sd measured;
        let n = Om_sched.Semidynamic.reschedule_count sd in
        if n > !reschedules_seen then begin
          sched_overhead :=
            !sched_overhead
            +. (float_of_int (n - !reschedules_seen) *. overhead_per_resched);
          reschedules_seen := n
        end)
  in
  let sys =
    Om_ode.Odesys.make ~names:(Array.copy compiled.state_names)
      ~dim:compiled.dim f
  in
  let y0 = Om_lang.Flat_model.initial_values r.model in
  let solver =
    match solver with Some s -> s | None -> Rk4 ((tend -. t0) /. 400.)
  in
  let trajectory = solve solver sys ~t0 ~tend ~y0 in
  let rhs_calls = sys.counters.rhs_calls in
  let total = !sim_seconds +. !sched_overhead in
  {
    trajectory;
    rhs_calls;
    sim_seconds = total;
    rhs_calls_per_sec = (if total > 0. then float_of_int rhs_calls /. total else 0.);
    sched_overhead_seconds = !sched_overhead;
    supervisor_comm_seconds = !comm_seconds;
    worker_utilization =
      (if !rounds = 0 then 1. else !utilization_sum /. float_of_int !rounds);
    worker_compute_seconds = compute_tot;
    worker_wait_seconds = wait_tot;
    reschedules = !reschedules_seen;
    solver_steps = sys.counters.steps;
  }

let execute ?(config = default_config) ?solver ?(t0 = 0.) ~tend r =
  match config.execution with
  | Simulated -> execute_simulated ~config ?solver ~t0 ~tend r
  | Real_domains n ->
      let solver =
        match solver with Some s -> s | None -> Rk4 ((tend -. t0) /. 400.)
      in
      execute_real config ~nworkers:n ~solver ~t0 ~tend r

let round_seconds ?(config = default_config) ?costs
    (r : Om_codegen.Pipeline.result) =
  let costs =
    match costs with
    | Some c -> c
    | None -> Om_codegen.Bytecode_backend.task_costs_static r.compiled
  in
  let sched =
    Om_sched.Lpt.schedule ~costs r.tasks ~nprocs:(max 1 config.nworkers)
  in
  let duration, _, _, _ = simulate_round config r sched.assignment costs in
  duration

let speedup ?(strategy = Om_machine.Supervisor.Broadcast_state) ~machine
    ~nworkers r =
  let base =
    round_seconds
      ~config:
        { machine; nworkers = 0; strategy; scheduling = Static;
          topology = Flat; execution = Simulated }
      r
  in
  let par =
    round_seconds
      ~config:
        { machine; nworkers; strategy; scheduling = Static; topology = Flat;
          execution = Simulated }
      r
  in
  base /. par
