(* Parallel lane dispatch for batched ensemble evaluation.

   One {!Om_codegen.Batch_backend.t} is shared by every worker: all of
   its mutable state is lane-indexed, so disjoint lane slices are safe
   to drive concurrently (see the Batch_backend docs).  The pool's job
   is fixed at creation and reads the current request from a mutable
   record, so a steady-state round allocates nothing on any domain.

   Per-lane arithmetic is independent of the slicing, so the parallel
   right-hand side is bitwise identical to the sequential one. *)

module Bb = Om_codegen.Batch_backend
module Pool = Om_parallel.Domain_pool

type request = {
  mutable times : float array;
  mutable y : float array array;
  mutable ydot : float array array;
  mutable lo : int;
  mutable hi : int;
}

type t = {
  backend : Bb.t;
  pool : Pool.t option; (* [None]: evaluate on the calling domain *)
  req : request;
}

let create ?(domains = 1) backend =
  if domains < 1 then invalid_arg "Ensemble_exec.create: domains < 1";
  let req = { times = [||]; y = [||]; ydot = [||]; lo = 0; hi = 0 } in
  let pool =
    if domains = 1 then None
    else
      let job w =
        let lo = req.lo and hi = req.hi in
        let n = hi - lo in
        let wlo = lo + (n * w / domains)
        and whi = lo + (n * (w + 1) / domains) in
        if whi > wlo then
          Bb.brhs backend ~times:req.times ~y:req.y ~ydot:req.ydot ~lo:wlo
            ~hi:whi
      in
      Some (Pool.create ~job domains)
  in
  { backend; pool; req }

let backend t = t.backend

let domains t = match t.pool with None -> 1 | Some p -> Pool.nworkers p

let brhs t ~times ~y ~ydot ~lo ~hi =
  match t.pool with
  | None -> Bb.brhs t.backend ~times ~y ~ydot ~lo ~hi
  | Some pool ->
      t.req.times <- times;
      t.req.y <- y;
      t.req.ydot <- ydot;
      t.req.lo <- lo;
      t.req.hi <- hi;
      Pool.round pool

let shutdown t = match t.pool with None -> () | Some p -> Pool.shutdown p
