(** Parallel simulation runtime: drive a real ODE solver with the generated
    RHS tasks executing on a simulated MIMD machine — or, with
    {!Real_domains}, on real OCaml domains.

    This is the complete loop of the paper's Figure 7/10: the solver runs
    on the supervisor; every RHS evaluation becomes one supervisor/worker
    round.  Under {!Simulated} execution the round is replayed on the
    machine model — the numerical results are exact (the tasks really
    execute), while the clock advances by the simulated round time.
    Under {!Real_domains} the same LPT schedule executes on a pool of
    worker domains ([Om_parallel.Par_exec]) and the clock is the wall
    clock.  [#RHS-calls per second] — the paper's Figure 12 metric —
    falls out as [rhs_calls / time] either way, and trajectories are
    bit-identical across execution modes and worker counts. *)

type scheduling =
  | Static  (** LPT on the static cost estimates, once *)
  | Static_with of float array
      (** LPT on externally supplied cost estimates, once (used by the
          scheduling ablation to model mis-estimated task times) *)
  | Semidynamic of int
      (** LPT on measured costs, rescheduling every [period] iterations
          (paper §3.2.3) *)

type topology =
  | Flat  (** all messages serialise at the supervisor (the paper's
              implementation) *)
  | Tree of int
      (** [fanout]-ary scatter/reduction trees (the scalable variant;
          forces full-state broadcast) *)

(** How RHS rounds are executed. *)
type execution =
  | Simulated  (** discrete-event machine model; simulated clock *)
  | Real_domains of int
      (** the round really runs on this many pre-spawned OCaml domains
          (ignoring [nworkers] and [machine], which describe the
          simulated target); time is wall-clock.  [Semidynamic period]
          is honoured: measured per-task times feed the paper's §3.2.3
          rescheduler and rebuilt LPT schedules are swapped into the
          live executor between rounds
          ([Om_parallel.Par_exec.create_measured]).  Trajectories stay
          bit-identical to sequential execution for every domain count
          and across reschedules. *)

type config = {
  machine : Om_machine.Machine.t;
  nworkers : int;  (** 0 = the solver evaluates the RHS locally *)
  strategy : Om_machine.Supervisor.comm_strategy;
  scheduling : scheduling;
  topology : topology;
  execution : execution;
  guard : bool;
      (** post-round finite check over the derivative vector (default
          on): a NaN/Inf produced by any task raises a typed
          [Nonfinite_output] naming the flattened equation instead of
          flowing silently into the solver's error estimator, and the
          solvers answer with retry/backoff *)
  faults : Om_guard.Fault_plan.t option;
      (** chaos: a deterministic fault-injection plan threaded into the
          executor (task output poisoning, worker delays, spawn
          failures; see [Om_guard.Fault_plan]).  Under {!Simulated}
          execution only task poisons apply. *)
  barrier_deadline : float;
      (** seconds before a round barrier records a worker stall and the
          runtime drops the stalled worker (degradation ladder);
          [0.] (default) disarms detection.  {!Real_domains} only. *)
  retry_budget : int;
      (** bound on consecutive solver step retries after guarded faults
          (default 8) *)
  cancel : Om_guard.Cancel.t option;
      (** cooperative cancellation/deadline token, polled once per RHS
          round (default [None]).  A cancelled token or an expired
          deadline surfaces as the non-retryable
          [Om_guard.Om_error.Cancelled] / [Deadline_exceeded] fault,
          aborting the integration at the next round — the serve layer's
          per-job deadline enforcement. *)
  jac_mode : Om_ode.Odesys.jac_mode;
      (** Newton-matrix strategy for the stiff solver path (default
          [Auto]).  Every runtime system carries the model's structural
          sparsity pattern (the equations' read sets), so [Auto] takes
          the colored-column sparse path on large sparse models;
          trajectories are bitwise-identical across modes. *)
}

val default_config : config
(** One simulated worker on the SPARCCenter 2000, broadcast state,
    static LPT; guard on, no fault plan, stall detection disarmed,
    retry budget 8. *)

type solver =
  | Rk4 of float  (** fixed step *)
  | Rkf45
  | Lsoda

type report = {
  trajectory : Om_ode.Odesys.trajectory;
  rhs_calls : int;
  sim_seconds : float;
      (** simulated machine time spent in RHS rounds; under
          {!Real_domains}, measured wall-clock seconds of the whole
          integration *)
  rhs_calls_per_sec : float;
  sched_overhead_seconds : float;
      (** rescheduling cost: simulated under {!Simulated}, measured
          wall-clock seconds spent rebuilding and swapping LPT schedules
          under {!Real_domains} *)
  supervisor_comm_seconds : float;
      (** supervisor busy time in the machine model; under
          {!Real_domains}, the measured barrier/synchronisation share of
          the rounds (round wall time minus the slowest worker's
          compute) *)
  worker_utilization : float;
      (** mean fraction of the round the workers spent computing (1.0
          when the solver runs the RHS locally); measured per-worker
          under {!Real_domains} ([Om_parallel.Round_stats]) *)
  worker_compute_seconds : float array;
      (** per-worker seconds spent executing tasks, summed over all
          rounds (simulated or measured to match the execution mode;
          length [nworkers], [[||]] when the RHS runs locally) *)
  worker_wait_seconds : float array;
      (** per-worker seconds spent idle at the round barrier, summed
          over all rounds — the per-worker complement of
          [worker_compute_seconds] *)
  reschedules : int;
  solver_steps : int;
  retries : int;
      (** solver step retries triggered by guarded runtime faults
          ([Odesys.counters.retries]) *)
  faults_injected : int;
      (** faults actually fired by [config.faults] ([0] without a plan) *)
  degradations : Om_guard.Om_error.degradation list;
      (** degradation-ladder steps taken, oldest first: spawn-time
          worker drops, mid-run stall drops, fall to sequential *)
  jac_mode : string;
      (** resolved Newton-matrix strategy the stiff path uses (or would
          use): ["dense"], ["banded:ml:mu"] or ["sparse"] *)
  jac_sparsity : (int * int) option;
      (** [(nnz, colors)] of the sparse Jacobian: structural nonzeros
          and the number of compressed column groups (= RHS evaluations
          per finite-difference Jacobian, against [dim + 1] dense);
          [None] when the resolved mode is not sparse *)
  jac_calls : int;
      (** Jacobian evaluations performed ([Odesys.counters.jac_calls]) *)
}

val execute :
  ?config:config ->
  ?solver:solver ->
  ?t0:float ->
  tend:float ->
  Om_codegen.Pipeline.result ->
  report
(** Integrate the compiled model from its initial state.  Default solver
    [Rk4 (tend /. 400.)].

    Robustness under {!Real_domains}: a failed pool construction
    ([Spawn_failure]) retries with one worker fewer down to sequential
    evaluation on the supervisor; a barrier-deadline stall drops the
    stalled worker and LPT-reassigns its tasks to the survivors.  Every
    rung is recorded in [report.degradations], and trajectories stay
    bit-identical across all of them.  Guarded non-finite RHS output is
    retried with step-size backoff inside the solvers (bounded by
    [config.retry_budget]).
    @raise Om_guard.Om_error.Error ([Step_failure]) when a solver
    exhausts its retry or step budget. *)

val round_seconds :
  ?config:config ->
  ?costs:float array ->
  Om_codegen.Pipeline.result ->
  float
(** Simulated duration of a single RHS round under an LPT schedule of the
    given per-task costs (static estimates by default) — the analytic fast
    path used by the scaling study. *)

val speedup :
  ?strategy:Om_machine.Supervisor.comm_strategy ->
  machine:Om_machine.Machine.t ->
  nworkers:int ->
  Om_codegen.Pipeline.result ->
  float
(** [round_seconds] with 0 workers divided by [round_seconds] with
    [nworkers]. *)
