(** Parallel simulation runtime: drive a real ODE solver with the generated
    RHS tasks executing on a simulated MIMD machine.

    This is the complete loop of the paper's Figure 7/10: the solver runs
    on the supervisor; every RHS evaluation becomes one supervisor/worker
    round on the machine model; the numerical results are exact (the tasks
    really execute), while the clock advances by the simulated round time.
    [#RHS-calls per second] — the paper's Figure 12 metric — falls out as
    [rhs_calls / simulated_time]. *)

type scheduling =
  | Static  (** LPT on the static cost estimates, once *)
  | Static_with of float array
      (** LPT on externally supplied cost estimates, once (used by the
          scheduling ablation to model mis-estimated task times) *)
  | Semidynamic of int
      (** LPT on measured costs, rescheduling every [period] iterations
          (paper §3.2.3) *)

type topology =
  | Flat  (** all messages serialise at the supervisor (the paper's
              implementation) *)
  | Tree of int
      (** [fanout]-ary scatter/reduction trees (the scalable variant;
          forces full-state broadcast) *)

type config = {
  machine : Om_machine.Machine.t;
  nworkers : int;  (** 0 = the solver evaluates the RHS locally *)
  strategy : Om_machine.Supervisor.comm_strategy;
  scheduling : scheduling;
  topology : topology;
}

val default_config : config
(** One worker on the SPARCCenter 2000, broadcast state, static LPT. *)

type solver =
  | Rk4 of float  (** fixed step *)
  | Rkf45
  | Lsoda

type report = {
  trajectory : Om_ode.Odesys.trajectory;
  rhs_calls : int;
  sim_seconds : float;  (** simulated machine time spent in RHS rounds *)
  rhs_calls_per_sec : float;
  sched_overhead_seconds : float;  (** simulated rescheduling cost *)
  supervisor_comm_seconds : float;
  worker_utilization : float;
      (** mean fraction of the round the workers spent computing (1.0
          when the solver runs the RHS locally) *)
  reschedules : int;
  solver_steps : int;
}

val execute :
  ?config:config ->
  ?solver:solver ->
  ?t0:float ->
  tend:float ->
  Om_codegen.Pipeline.result ->
  report
(** Integrate the compiled model from its initial state.  Default solver
    [Rk4 (tend /. 400.)]. *)

val round_seconds :
  ?config:config ->
  ?costs:float array ->
  Om_codegen.Pipeline.result ->
  float
(** Simulated duration of a single RHS round under an LPT schedule of the
    given per-task costs (static estimates by default) — the analytic fast
    path used by the scaling study. *)

val speedup :
  ?strategy:Om_machine.Supervisor.comm_strategy ->
  machine:Om_machine.Machine.t ->
  nworkers:int ->
  Om_codegen.Pipeline.result ->
  float
(** [round_seconds] with 0 workers divided by [round_seconds] with
    [nworkers]. *)
