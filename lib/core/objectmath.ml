(** ObjectMath reproduction — umbrella API.

    One [open]-able entry point over the whole system, following the
    paper's architecture (Figure 7):

    - {!Expr}/{!Simplify}/{!Deriv}: the symbolic expression engine,
    - {!Parser}/{!Flatten}/{!Flat_model}: the modelling-language frontend,
    - {!Scc}/{!Topo}: dependency analysis,
    - {!Pipeline}/{!Cse}/{!Partition}/{!Fortran}: the code generator,
    - {!Lpt}/{!Semidynamic}/{!Dag_sched}: scheduling,
    - {!Machine}/{!Supervisor}/{!Round_desc}: the MIMD machine model,
    - {!Domain_pool}/{!Par_exec}/{!Scaling}: real multicore execution
      of the generated tasks on OCaml domains,
    - {!Odesys}/{!Rk}/{!Adams}/{!Bdf}/{!Lsoda}: the solver stack,
    - {!Runtime}: parallel execution of generated code on the machine
      model under a real solver,
    - {!Bearing2d}/{!Powerplant}/{!Servo}/{!Bearing_scaled}: the paper's
      application models. *)

module Expr = Om_expr.Expr
module Simplify = Om_expr.Simplify
module Deriv = Om_expr.Deriv
module Subst = Om_expr.Subst
module Eval = Om_expr.Eval
module Cost = Om_expr.Cost
module Prefix_form = Om_expr.Prefix_form
module Vm = Om_expr.Vm
module Vm_code = Om_expr.Vm_code
module Vm_batch = Om_expr.Vm_batch
module Vm_stack = Om_expr.Vm_stack
module Peephole = Om_expr.Peephole

module Ast = Om_lang.Ast
module Parser = Om_lang.Parser
module Flatten = Om_lang.Flatten
module Flat_model = Om_lang.Flat_model
module Typecheck = Om_lang.Typecheck
module Unparse = Om_lang.Unparse
module Override = Om_lang.Override
module Browser = Om_lang.Browser

module Digraph = Om_graph.Digraph
module Scc = Om_graph.Scc
module Topo = Om_graph.Topo
module Dot = Om_graph.Dot

module Linalg = Om_ode.Linalg
module Odesys = Om_ode.Odesys
module Rk = Om_ode.Rk
module Ensemble = Om_ode.Ensemble
module Adams = Om_ode.Adams
module Bdf = Om_ode.Bdf
module Rosenbrock = Om_ode.Rosenbrock
module Banded = Om_ode.Banded
module Lsoda = Om_ode.Lsoda
module Jacobian = Om_ode.Jacobian
module Events = Om_ode.Events

module Task = Om_sched.Task
module Lpt = Om_sched.Lpt
module Semidynamic = Om_sched.Semidynamic
module Dag_sched = Om_sched.Dag_sched

module Machine = Om_machine.Machine
module Supervisor = Om_machine.Supervisor
module Event_sim = Om_machine.Event_sim
module Round_desc = Om_machine.Round_desc

module Domain_pool = Om_parallel.Domain_pool
module Par_exec = Om_parallel.Par_exec
module Scaling = Om_parallel.Scaling

module Assignments = Om_codegen.Assignments
module Cse = Om_codegen.Cse
module Partition = Om_codegen.Partition
module Comm_analysis = Om_codegen.Comm_analysis
module Bytecode_backend = Om_codegen.Bytecode_backend
module Batch_backend = Om_codegen.Batch_backend
module Fortran = Om_codegen.Fortran
module C_backend = Om_codegen.C_backend
module Mathematica_backend = Om_codegen.Mathematica_backend
module Jacobian_gen = Om_codegen.Jacobian_gen
module Pipeline = Om_codegen.Pipeline
module Stats = Om_codegen.Stats
module Diagnostics = Om_codegen.Diagnostics

module Bearing2d = Om_models.Bearing2d
module Powerplant = Om_models.Powerplant
module Servo = Om_models.Servo
module Bearing_scaled = Om_models.Bearing_scaled

module Plot = Om_viz.Plot
module Grid = Om_pde.Grid
module Discretize = Om_pde.Discretize

module Runtime = Runtime
module Sweep = Sweep
module Ensemble_exec = Ensemble_exec

(** Compile an ObjectMath source text down to an ODE system ready for any
    solver in {!Rk}, {!Adams}, {!Bdf} or {!Lsoda}. *)
let odesys_of_source src =
  let fm = Flatten.flatten_string src in
  (fm, Odesys.of_equations fm.equations)

(** Compile a flat model through the full code-generation pipeline and wrap
    the generated (bytecode) RHS as an ODE system. *)
let odesys_of_result (r : Pipeline.result) =
  Odesys.make
    ~names:(Flat_model.state_names r.model)
    ~dim:r.compiled.dim
    (Om_codegen.Pipeline.rhs_fn r)
