(** Parallel lane dispatch for batched ensemble evaluation.

    Wraps a {!Om_codegen.Batch_backend.t} as an {!Om_ode.Ensemble.brhs}
    that splits the requested lane range into contiguous slices across a
    pre-spawned {!Om_parallel.Domain_pool}.  Because the batch backend's
    mutable state is lane-indexed, every worker drives the {e same}
    backend instance over its own slice — no cloning, no merging — and
    per-lane arithmetic is independent of the slicing, so the parallel
    evaluation is Int64-bitwise identical to the sequential one. *)

type t

val create : ?domains:int -> Om_codegen.Batch_backend.t -> t
(** [create ~domains backend] — with [domains = 1] (the default) the
    right-hand side runs on the calling domain and no pool is spawned.
    @raise Invalid_argument if [domains < 1].
    @raise Om_guard.Om_error.Error ([Spawn_failure]) if a worker domain
    cannot be spawned. *)

val backend : t -> Om_codegen.Batch_backend.t
val domains : t -> int

val brhs :
  t ->
  times:float array ->
  y:float array array ->
  ydot:float array array ->
  lo:int ->
  hi:int ->
  unit
(** Evaluate lanes [lo..hi-1]; matches {!Om_ode.Ensemble.brhs}. *)

val shutdown : t -> unit
(** Join the worker domains, if any.  Idempotent. *)
