type point = {
  value : float;
  metric : float;
  steps : int;
  rhs_calls : int;
}

let final_value name sys tr =
  let col = Om_ode.Odesys.column tr name sys in
  col.(Array.length col - 1)

let run ~source ~cls ~param ~values ~tend ?atol ?rtol ~metric () =
  List.map
    (fun value ->
      let fm =
        Om_lang.Override.flatten_with ~source
          ~overrides:[ (cls, param, value) ]
      in
      let sys =
        Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false fm.equations
      in
      let y0 = Om_lang.Flat_model.initial_values fm in
      let r = Om_ode.Lsoda.integrate ?atol ?rtol sys ~t0:0. ~y0 ~tend in
      {
        value;
        metric = metric sys r.trajectory;
        steps = sys.counters.steps;
        rhs_calls = sys.counters.rhs_calls;
      })
    values

let to_series label points =
  Om_viz.Plot.series label
    (List.map (fun p -> (p.value, p.metric)) points)
