(* Parameter sweeps and Monte Carlo ensembles.

   The fast path promotes the swept parameter to a frozen state
   variable ([Override.promote_parameter]) so the model is parsed,
   flattened and compiled ONCE; every sweep value / Monte Carlo sample
   becomes one member of a lockstep ensemble whose initial state carries
   the parameter value, integrated by [Ensemble.rkf45] over the batched
   register VM ([Batch_backend], optionally sliced across domains by
   [Ensemble_exec]).

   Promotion is refused when the parameter is structurally rebound
   ([Override.Structural]) or when the promoted model no longer
   elaborates ([Flatten.Error] — e.g. an initial value depends on the
   parameter); those sweeps fall back to the legacy path that
   re-flattens per value and integrates each point separately.  A bad
   class/parameter name ([Override.Unknown_target]) is the caller's
   error and always escapes. *)

type point = {
  value : float;
  metric : float;
  steps : int;
  rhs_calls : int;
}

let final_value name sys tr =
  let col = Om_ode.Odesys.column tr name sys in
  col.(Array.length col - 1)

(* ---- compile-once preparation ---- *)

type compiled = {
  result : Om_codegen.Pipeline.result;
  sys : Om_ode.Odesys.t; (* promoted system, for metric name lookup *)
  y0 : float array; (* promoted model's default initial state *)
  slot_sets : int array array; (* per promoted parameter: its state slots *)
}

type prepared = Promoted of compiled | Legacy of string

let promote_all ast params =
  (* Promote each (class, param) in turn, flattening after each step so
     the new state slots of every promotion can be told apart. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (n, _) -> Hashtbl.replace seen n ())
    (Om_lang.Flatten.flatten ast).Om_lang.Flat_model.states;
  let ast, rev_slot_names =
    List.fold_left
      (fun (ast, acc) (cls, param) ->
        let ast = Om_lang.Override.promote_parameter ast ~cls ~param in
        let fm = Om_lang.Flatten.flatten ast in
        let fresh =
          List.filter
            (fun (n, _) -> not (Hashtbl.mem seen n))
            fm.Om_lang.Flat_model.states
          |> List.map fst
        in
        if fresh = [] then
          raise
            (Om_lang.Override.Structural
               (Printf.sprintf "promoting %s.%s adds no state" cls param));
        List.iter (fun n -> Hashtbl.replace seen n ()) fresh;
        (ast, fresh :: acc))
      (ast, []) params
  in
  (ast, List.rev rev_slot_names)

let prepare_many ~source params =
  let ast = Om_lang.Parser.parse_model source in
  (* Unknown_target is raised by promote_parameter before any
     structural analysis, so a bad class/parameter name escapes the
     fallback handlers below. *)
  try
    let ast, slot_names = promote_all ast params in
    let fm = Om_lang.Flatten.flatten ast in
    let result = Om_codegen.Pipeline.compile fm in
    let sys =
      Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
        fm.Om_lang.Flat_model.equations
    in
    let index_of =
      let h = Hashtbl.create 64 in
      List.iteri
        (fun i (n, _) -> Hashtbl.replace h n i)
        fm.Om_lang.Flat_model.states;
      Hashtbl.find h
    in
    let slot_sets =
      List.map
        (fun names -> Array.of_list (List.map index_of names))
        slot_names
      |> Array.of_list
    in
    Promoted
      {
        result;
        sys;
        y0 = Om_lang.Flat_model.initial_values fm;
        slot_sets;
      }
  with
  | Om_lang.Override.Structural reason -> Legacy reason
  | Om_lang.Flatten.Error reason ->
      Legacy (Printf.sprintf "promoted model does not elaborate: %s" reason)

let prepare ~source ~cls ~param = prepare_many ~source [ (cls, param) ]

(* ---- ensemble integration of a prepared model ---- *)

(* [draws.(m)] assigns one value per promoted parameter for member [m]. *)
let integrate_batch ?(domains = 1) ?atol ?rtol c ~draws ~tend =
  let dim = Array.length c.y0 in
  let y0s =
    Array.map
      (fun vals ->
        let y = Array.copy c.y0 in
        Array.iteri
          (fun p v -> Array.iter (fun s -> y.(s) <- v) c.slot_sets.(p))
          vals;
        y)
      draws
  in
  let bb =
    Om_codegen.Batch_backend.create
      c.result.Om_codegen.Pipeline.compiled ~width:(Array.length draws)
  in
  let ex = Ensemble_exec.create ~domains bb in
  Fun.protect
    ~finally:(fun () -> Ensemble_exec.shutdown ex)
    (fun () ->
      let ens = Om_ode.Ensemble.create ~dim ~f:(Ensemble_exec.brhs ex) y0s in
      Om_ode.Ensemble.rkf45 ~record:true ?atol ?rtol ens ~t0:0. ~tend)

let run_compiled ?domains c ~values ~tend ?atol ?rtol ~metric () =
  let draws = Array.of_list (List.map (fun v -> [| v |]) values) in
  let rep = integrate_batch ?domains ?atol ?rtol c ~draws ~tend in
  let trajs =
    match rep.Om_ode.Ensemble.trajectories with
    | Some t -> t
    | None -> assert false
  in
  List.mapi
    (fun m v ->
      {
        value = v;
        metric = metric c.sys trajs.(m);
        steps = rep.steps.(m);
        rhs_calls = rep.rhs_evals.(m);
      })
    values

(* ---- legacy per-value path (structural overrides) ---- *)

let run_legacy ~source ~cls ~param ~values ~tend ?atol ?rtol ~metric () =
  List.map
    (fun value ->
      let fm =
        Om_lang.Override.flatten_with ~source
          ~overrides:[ (cls, param, value) ]
      in
      let sys =
        Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false fm.equations
      in
      let y0 = Om_lang.Flat_model.initial_values fm in
      let r = Om_ode.Lsoda.integrate ?atol ?rtol sys ~t0:0. ~y0 ~tend in
      {
        value;
        metric = metric sys r.trajectory;
        steps = sys.counters.steps;
        rhs_calls = sys.counters.rhs_calls;
      })
    values

let run ~source ~cls ~param ~values ~tend ?atol ?rtol ~metric () =
  match prepare ~source ~cls ~param with
  | Promoted c -> run_compiled c ~values ~tend ?atol ?rtol ~metric ()
  | Legacy _ ->
      run_legacy ~source ~cls ~param ~values ~tend ?atol ?rtol ~metric ()

(* ---- Monte Carlo ensembles ---- *)

type dist = Uniform of float * float | Normal of float * float

type mc_sample = {
  draws : float array;
  mc_metric : float;
  mc_steps : int;
  mc_rhs_calls : int;
}

type mc_report = {
  samples : mc_sample list;
  mean : float;
  stddev : float;
  promoted : bool;
}

let draw st = function
  | Uniform (a, b) -> a +. ((b -. a) *. Random.State.float st 1.)
  | Normal (mu, sigma) ->
      (* Box-Muller; (1 - u1) keeps the log argument in (0, 1]. *)
      let u1 = Random.State.float st 1. and u2 = Random.State.float st 1. in
      mu
      +. sigma
         *. Float.sqrt (-2. *. Float.log (1. -. u1))
         *. Float.cos (2. *. Float.pi *. u2)

let draw_all ~specs ~samples ~seed =
  let st = Random.State.make [| seed |] in
  (* Fixed draw order — per sample, then per spec — so a given seed
     yields the same parameter sets on every run. *)
  Array.init samples (fun _ ->
      Array.of_list (List.map (fun (_, _, d) -> draw st d) specs))

let summarize samples =
  let n = float_of_int (List.length samples) in
  let mean =
    List.fold_left (fun a s -> a +. s.mc_metric) 0. samples /. n
  in
  let var =
    List.fold_left
      (fun a s ->
        let d = s.mc_metric -. mean in
        a +. (d *. d))
      0. samples
    /. n
  in
  { samples; mean; stddev = Float.sqrt var; promoted = true }

let monte_carlo ~source ~specs ~samples ~seed ~tend ?atol ?rtol ?domains
    ~metric () =
  if samples < 1 then invalid_arg "Sweep.monte_carlo: samples < 1";
  if specs = [] then invalid_arg "Sweep.monte_carlo: no parameter specs";
  let draws = draw_all ~specs ~samples ~seed in
  let params = List.map (fun (c, p, _) -> (c, p)) specs in
  match prepare_many ~source params with
  | Promoted c ->
      let rep = integrate_batch ?domains ?atol ?rtol c ~draws ~tend in
      let trajs =
        match rep.Om_ode.Ensemble.trajectories with
        | Some t -> t
        | None -> assert false
      in
      let out =
        List.init samples (fun m ->
            {
              draws = draws.(m);
              mc_metric = metric c.sys trajs.(m);
              mc_steps = rep.steps.(m);
              mc_rhs_calls = rep.rhs_evals.(m);
            })
      in
      summarize out
  | Legacy _ ->
      (* Per-sample re-elaboration: same draws, same metric. *)
      let out =
        List.init samples (fun m ->
            let overrides =
              List.mapi (fun p (cls, prm, _) -> (cls, prm, draws.(m).(p))) specs
            in
            let fm = Om_lang.Override.flatten_with ~source ~overrides in
            let sys =
              Om_ode.Odesys.of_equations ~with_symbolic_jacobian:false
                fm.equations
            in
            let y0 = Om_lang.Flat_model.initial_values fm in
            let r = Om_ode.Lsoda.integrate ?atol ?rtol sys ~t0:0. ~y0 ~tend in
            {
              draws = draws.(m);
              mc_metric = metric sys r.trajectory;
              mc_steps = sys.counters.steps;
              mc_rhs_calls = sys.counters.rhs_calls;
            })
      in
      { (summarize out) with promoted = false }

let to_series label points =
  Om_viz.Plot.series label
    (List.map (fun p -> (p.value, p.metric)) points)
