type fixed_stepper =
  Odesys.t -> float -> float array -> float -> float array

let axpy n a x y =
  (* y + a*x, fresh array *)
  Array.init n (fun i -> y.(i) +. (a *. x.(i)))

let euler : fixed_stepper =
 fun sys t y h ->
  let k1 = Odesys.rhs sys t y in
  axpy sys.dim h k1 y

let heun : fixed_stepper =
 fun sys t y h ->
  let k1 = Odesys.rhs sys t y in
  let k2 = Odesys.rhs sys (t +. h) (axpy sys.dim h k1 y) in
  Array.init sys.dim (fun i -> y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i))))

let rk4 : fixed_stepper =
 fun sys t y h ->
  let n = sys.dim in
  let k1 = Odesys.rhs sys t y in
  let k2 = Odesys.rhs sys (t +. (h /. 2.)) (axpy n (h /. 2.) k1 y) in
  let k3 = Odesys.rhs sys (t +. (h /. 2.)) (axpy n (h /. 2.) k2 y) in
  let k4 = Odesys.rhs sys (t +. h) (axpy n h k3 y) in
  Array.init n (fun i ->
      y.(i) +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let step (s : fixed_stepper) = s

let integrate_fixed ?(max_retries = 8) stepper (sys : Odesys.t) ~t0 ~y0 ~tend
    ~h =
  if h <= 0. then invalid_arg "Rk.integrate_fixed: nonpositive step";
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  let t = ref t0 and y = ref (Array.copy y0) in
  while !t < tend -. 1e-12 do
    let h' = Float.min h (tend -. !t) in
    (* Guarded advance.  The first retry re-runs the step at the {e same}
       size: a transient fault (an injected poison fires at most once)
       re-evaluates to the exact same bits, so the recovered trajectory
       is Int64-identical to a fault-free run.  Only a repeated failure —
       a genuinely non-finite RHS at this (t, h) — backs off by halving,
       up to the retry budget. *)
    let rec attempt h_try retries =
      match stepper sys !t !y h_try with
      | y' -> (y', h_try)
      | exception Om_guard.Om_error.Error cause
        when not (Om_guard.Om_error.retryable cause) ->
          Om_guard.Om_error.error cause
      | exception Om_guard.Om_error.Error cause ->
          sys.counters.retries <- sys.counters.retries + 1;
          if retries >= max_retries then
            Om_guard.Om_error.(
              error
                (Step_failure
                   {
                     solver = "rk-fixed";
                     time = !t;
                     step = h_try;
                     retries;
                     reason = to_string cause;
                   }))
          else
            attempt (if retries = 0 then h_try else h_try /. 2.) (retries + 1)
    in
    let y', h_used = attempt h' 0 in
    y := y';
    t := !t +. h_used;
    sys.counters.steps <- sys.counters.steps + 1;
    ts := !t :: !ts;
    ys := !y :: !ys
  done;
  {
    Odesys.ts = Array.of_list (List.rev !ts);
    states = Array.of_list (List.rev !ys);
  }

(* Runge–Kutta–Fehlberg 4(5) coefficients. *)
let rkf_c = [| 0.; 0.25; 3. /. 8.; 12. /. 13.; 1.; 0.5 |]

let rkf_a =
  [|
    [||];
    [| 0.25 |];
    [| 3. /. 32.; 9. /. 32. |];
    [| 1932. /. 2197.; -7200. /. 2197.; 7296. /. 2197. |];
    [| 439. /. 216.; -8.; 3680. /. 513.; -845. /. 4104. |];
    [| -8. /. 27.; 2.; -3544. /. 2565.; 1859. /. 4104.; -11. /. 40. |];
  |]

let rkf_b5 =
  [| 16. /. 135.; 0.; 6656. /. 12825.; 28561. /. 56430.; -9. /. 50.; 2. /. 55. |]

let rkf_b4 = [| 25. /. 216.; 0.; 1408. /. 2565.; 2197. /. 4104.; -0.2; 0. |]

let rkf45 ?(atol = 1e-8) ?(rtol = 1e-6) ?h0 ?(max_steps = 1_000_000)
    ?(max_retries = 8) (sys : Odesys.t) ~t0 ~y0 ~tend =
  let n = sys.dim in
  let span = tend -. t0 in
  if span <= 0. then invalid_arg "Rk.rkf45: tend <= t0";
  let h = ref (match h0 with Some h -> h | None -> span /. 100.) in
  let t = ref t0 and y = ref (Array.copy y0) in
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  let k = Array.make 6 [||] in
  let steps = ref 0 in
  (* Consecutive guarded-fault retries at the current time; reset on any
     attempt that completes its six stages. *)
  let consec = ref 0 in
  while !t < tend -. 1e-12 do
    incr steps;
    if !steps > max_steps then
      Om_guard.Om_error.(
        error
          (Step_failure
             {
               solver = "rkf45";
               time = !t;
               step = !h;
               retries = sys.counters.retries;
               reason = "step budget exhausted";
             }));
    let h' = Float.min !h (tend -. !t) in
    let attempt () =
      for s = 0 to 5 do
        let ys_stage =
          Array.init n (fun i ->
              let acc = ref !y.(i) in
              for j = 0 to s - 1 do
                acc := !acc +. (h' *. rkf_a.(s).(j) *. k.(j).(i))
              done;
              !acc)
        in
        k.(s) <- Odesys.rhs sys (!t +. (rkf_c.(s) *. h')) ys_stage
      done;
      let y5 =
        Array.init n (fun i ->
            let acc = ref !y.(i) in
            for s = 0 to 5 do
              acc := !acc +. (h' *. rkf_b5.(s) *. k.(s).(i))
            done;
            !acc)
      in
      let err =
        Array.init n (fun i ->
            let acc = ref 0. in
            for s = 0 to 5 do
              acc := !acc +. (h' *. (rkf_b5.(s) -. rkf_b4.(s)) *. k.(s).(i))
            done;
            !acc)
      in
      (y5, err)
    in
    match attempt () with
    | exception Om_guard.Om_error.Error cause
      when not (Om_guard.Om_error.retryable cause) ->
        Om_guard.Om_error.error cause
    | exception Om_guard.Om_error.Error cause ->
        (* Same backoff ladder as [integrate_fixed]: retry at the same
           step first (bitwise-identical recovery from transient faults),
           then halve. *)
        sys.counters.retries <- sys.counters.retries + 1;
        incr consec;
        if !consec > max_retries then
          Om_guard.Om_error.(
            error
              (Step_failure
                 {
                   solver = "rkf45";
                   time = !t;
                   step = h';
                   retries = !consec - 1;
                   reason = to_string cause;
                 }));
        if !consec > 1 then h := h' /. 2.
    | y5, err ->
        consec := 0;
        let weights =
          Array.init n (fun i ->
              atol +. (rtol *. Float.max (Float.abs !y.(i)) (Float.abs y5.(i))))
        in
        let e = Linalg.wrms_norm err weights in
        if e <= 1. then begin
          t := !t +. h';
          y := y5;
          sys.counters.steps <- sys.counters.steps + 1;
          ts := !t :: !ts;
          ys := Array.copy y5 :: !ys
        end
        else sys.counters.rejected <- sys.counters.rejected + 1;
        (* Standard step-size update with safety factor, clamped growth. *)
        let factor =
          if e = 0. then 5.
          else Float.min 5. (Float.max 0.2 (0.9 *. (e ** (-0.2))))
        in
        h := h' *. factor
  done;
  {
    Odesys.ts = Array.of_list (List.rev !ts);
    states = Array.of_list (List.rev !ys);
  }
