type fixed_stepper =
  Odesys.t -> float -> float array -> float -> float array

let axpy n a x y =
  (* y + a*x, fresh array *)
  Array.init n (fun i -> y.(i) +. (a *. x.(i)))

let euler : fixed_stepper =
 fun sys t y h ->
  let k1 = Odesys.rhs sys t y in
  axpy sys.dim h k1 y

let heun : fixed_stepper =
 fun sys t y h ->
  let k1 = Odesys.rhs sys t y in
  let k2 = Odesys.rhs sys (t +. h) (axpy sys.dim h k1 y) in
  Array.init sys.dim (fun i -> y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i))))

let rk4 : fixed_stepper =
 fun sys t y h ->
  let n = sys.dim in
  let k1 = Odesys.rhs sys t y in
  let k2 = Odesys.rhs sys (t +. (h /. 2.)) (axpy n (h /. 2.) k1 y) in
  let k3 = Odesys.rhs sys (t +. (h /. 2.)) (axpy n (h /. 2.) k2 y) in
  let k4 = Odesys.rhs sys (t +. h) (axpy n h k3 y) in
  Array.init n (fun i ->
      y.(i) +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let step (s : fixed_stepper) = s

let integrate_fixed stepper (sys : Odesys.t) ~t0 ~y0 ~tend ~h =
  if h <= 0. then invalid_arg "Rk.integrate_fixed: nonpositive step";
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  let t = ref t0 and y = ref (Array.copy y0) in
  while !t < tend -. 1e-12 do
    let h' = Float.min h (tend -. !t) in
    y := stepper sys !t !y h';
    t := !t +. h';
    sys.counters.steps <- sys.counters.steps + 1;
    ts := !t :: !ts;
    ys := !y :: !ys
  done;
  {
    Odesys.ts = Array.of_list (List.rev !ts);
    states = Array.of_list (List.rev !ys);
  }

(* Runge–Kutta–Fehlberg 4(5) coefficients. *)
let rkf_c = [| 0.; 0.25; 3. /. 8.; 12. /. 13.; 1.; 0.5 |]

let rkf_a =
  [|
    [||];
    [| 0.25 |];
    [| 3. /. 32.; 9. /. 32. |];
    [| 1932. /. 2197.; -7200. /. 2197.; 7296. /. 2197. |];
    [| 439. /. 216.; -8.; 3680. /. 513.; -845. /. 4104. |];
    [| -8. /. 27.; 2.; -3544. /. 2565.; 1859. /. 4104.; -11. /. 40. |];
  |]

let rkf_b5 =
  [| 16. /. 135.; 0.; 6656. /. 12825.; 28561. /. 56430.; -9. /. 50.; 2. /. 55. |]

let rkf_b4 = [| 25. /. 216.; 0.; 1408. /. 2565.; 2197. /. 4104.; -0.2; 0. |]

let rkf45 ?(atol = 1e-8) ?(rtol = 1e-6) ?h0 ?(max_steps = 1_000_000)
    (sys : Odesys.t) ~t0 ~y0 ~tend =
  let n = sys.dim in
  let span = tend -. t0 in
  if span <= 0. then invalid_arg "Rk.rkf45: tend <= t0";
  let h = ref (match h0 with Some h -> h | None -> span /. 100.) in
  let t = ref t0 and y = ref (Array.copy y0) in
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  let k = Array.make 6 [||] in
  let steps = ref 0 in
  while !t < tend -. 1e-12 do
    incr steps;
    if !steps > max_steps then failwith "Rk.rkf45: too many steps";
    let h' = Float.min !h (tend -. !t) in
    for s = 0 to 5 do
      let ys_stage =
        Array.init n (fun i ->
            let acc = ref !y.(i) in
            for j = 0 to s - 1 do
              acc := !acc +. (h' *. rkf_a.(s).(j) *. k.(j).(i))
            done;
            !acc)
      in
      k.(s) <- Odesys.rhs sys (!t +. (rkf_c.(s) *. h')) ys_stage
    done;
    let y5 =
      Array.init n (fun i ->
          let acc = ref !y.(i) in
          for s = 0 to 5 do
            acc := !acc +. (h' *. rkf_b5.(s) *. k.(s).(i))
          done;
          !acc)
    in
    let err =
      Array.init n (fun i ->
          let acc = ref 0. in
          for s = 0 to 5 do
            acc := !acc +. (h' *. (rkf_b5.(s) -. rkf_b4.(s)) *. k.(s).(i))
          done;
          !acc)
    in
    let weights =
      Array.init n (fun i ->
          atol +. (rtol *. Float.max (Float.abs !y.(i)) (Float.abs y5.(i))))
    in
    let e = Linalg.wrms_norm err weights in
    if e <= 1. then begin
      t := !t +. h';
      y := y5;
      sys.counters.steps <- sys.counters.steps + 1;
      ts := !t :: !ts;
      ys := Array.copy y5 :: !ys
    end
    else sys.counters.rejected <- sys.counters.rejected + 1;
    (* Standard step-size update with safety factor, clamped growth. *)
    let factor =
      if e = 0. then 5. else Float.min 5. (Float.max 0.2 (0.9 *. (e ** (-0.2))))
    in
    h := h' *. factor
  done;
  {
    Odesys.ts = Array.of_list (List.rev !ts);
    states = Array.of_list (List.rev !ys);
  }
