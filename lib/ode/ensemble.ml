(* Lockstep ensemble integration: one solver loop advancing a batch of
   member trajectories of the same ODE system (differing in initial
   state / promoted parameters) through a batched RHS.

   The fixed-step RK4 driver advances every member with the same step
   sequence, so each member's trajectory is bitwise identical to a
   scalar [Rk.integrate_fixed Rk.rk4] run of the same per-lane RHS —
   this is the invariant the fuzz oracle checks.

   The adaptive RKF45 driver keeps the batch in lockstep with a shared
   step size and splits the group when per-member error estimates
   diverge (Atanassov's trick for integrating many nearby scenarios):
   an attempted step partitions members into passing (error <= 1) and
   failing; passing members accept and the group's next step size is
   derived from the passing members' worst error only, while the
   failing members split into a subgroup that is sub-stepped
   recursively from t to the rendezvous point t + h' and then merged
   back.  A member that is persistently stiffer than the rest therefore
   never influences the others' step sequence — their trajectories are
   bitwise identical to an ensemble run without the stiff member — and
   groups re-merge at every macro step, so fragmentation cannot
   accumulate.  At width 1 the controller reduces exactly to the scalar
   [Rk.rkf45] loop (same error weights, WRMS norm, safety factor and
   growth clamps), making batch-of-1 bitwise identical to the scalar
   adaptive solver.

   State is SoA ([y.(i).(lane)]) like {!Om_expr.Vm_batch}.  Groups are
   contiguous lane ranges: a split stably partitions the SoA columns
   (pure float copies, so bitwise-safe) and the [perm] array tracks
   which member lives in which lane. *)

type brhs =
  times:float array ->
  y:float array array ->
  ydot:float array array ->
  lo:int ->
  hi:int ->
  unit

type t = {
  dim : int;
  width : int;
  f : brhs;
  y : float array array; (* dim x width, lane-indexed *)
  perm : int array; (* lane -> member *)
  times : float array; (* per-lane stage-time buffer *)
  k : float array array array; (* 6 stages x dim x width *)
  ytmp : float array array; (* dim x width *)
  y5 : float array array; (* dim x width *)
  lane_err : float array; (* per-lane WRMS error of the last attempt *)
  scratch : float array; (* width, for column permutes *)
  iscratch : int array; (* width, partition order *)
  iscratch2 : int array; (* width, for permuting perm *)
  (* telemetry, member-indexed *)
  steps : int array;
  rejected : int array;
  rhs_evals : int array;
  mutable rhs_batches : int;
  mutable splits : int;
  mutable merges : int;
  mutable attempts : int;
  mutable max_depth : int;
  (* recording (member-indexed, reversed) *)
  mutable record : bool;
  mts : float list array;
  mys : float array list array;
}

type report = {
  final : float array array; (* member-major: [final.(m).(i)] *)
  steps : int array;
  rejected : int array;
  rhs_evals : int array;
  rhs_batches : int;
  splits : int;
  merges : int;
  max_group_depth : int;
  trajectories : Odesys.trajectory array option;
}

let create ~dim ~f y0 =
  let width = Array.length y0 in
  if width < 1 then invalid_arg "Ensemble.create: empty batch";
  if dim < 1 then invalid_arg "Ensemble.create: dim < 1";
  Array.iter
    (fun v ->
      if Array.length v <> dim then
        invalid_arg "Ensemble.create: member state length mismatch")
    y0;
  {
    dim;
    width;
    f;
    y = Array.init dim (fun i -> Array.init width (fun m -> y0.(m).(i)));
    perm = Array.init width (fun m -> m);
    times = Array.make width 0.;
    k = Array.init 6 (fun _ -> Array.init dim (fun _ -> Array.make width 0.));
    ytmp = Array.init dim (fun _ -> Array.make width 0.);
    y5 = Array.init dim (fun _ -> Array.make width 0.);
    lane_err = Array.make width 0.;
    scratch = Array.make width 0.;
    iscratch = Array.make width 0;
    iscratch2 = Array.make width 0;
    steps = Array.make width 0;
    rejected = Array.make width 0;
    rhs_evals = Array.make width 0;
    rhs_batches = 0;
    splits = 0;
    merges = 0;
    attempts = 0;
    max_depth = 0;
    record = false;
    mts = Array.make width [];
    mys = Array.make width [];
  }

let width e = e.width
let dim e = e.dim

(* Record an accepted point for the member in lane [j]. *)
let record_lane e t j =
  if e.record then begin
    let m = e.perm.(j) in
    e.mts.(m) <- t :: e.mts.(m);
    e.mys.(m) <- Array.init e.dim (fun i -> e.y.(i).(j)) :: e.mys.(m)
  end

let start_recording e t0 =
  e.record <- true;
  for j = 0 to e.width - 1 do
    record_lane e t0 j
  done

let report ?trajectories e =
  let final = Array.make_matrix e.width e.dim 0. in
  for j = 0 to e.width - 1 do
    let m = e.perm.(j) in
    for i = 0 to e.dim - 1 do
      final.(m).(i) <- e.y.(i).(j)
    done
  done;
  {
    final;
    steps = e.steps;
    rejected = e.rejected;
    rhs_evals = e.rhs_evals;
    rhs_batches = e.rhs_batches;
    splits = e.splits;
    merges = e.merges;
    max_group_depth = e.max_depth;
    trajectories;
  }

let trajectories_of e =
  Array.init e.width (fun m ->
      {
        Odesys.ts = Array.of_list (List.rev e.mts.(m));
        states = Array.of_list (List.rev e.mys.(m));
      })

(* ---- fixed-step RK4, shared step sequence ---- *)

let rk4 ?(record = false) e ~t0 ~tend ~h =
  if h <= 0. then invalid_arg "Ensemble.rk4: nonpositive step";
  if record then start_recording e t0;
  let lo = 0 and hi = e.width in
  let n = e.dim in
  let t = ref t0 in
  while !t < tend -. 1e-12 do
    let h' = Float.min h (tend -. !t) in
    (* Stage arithmetic is the scalar stepper's, per lane:
       axpy [y +. (a *. k)] and the same combine expression. *)
    Array.fill e.times lo (hi - lo) !t;
    e.f ~times:e.times ~y:e.y ~ydot:e.k.(0) ~lo ~hi;
    let half = h' /. 2. in
    for i = 0 to n - 1 do
      let yi = e.y.(i) and yt = e.ytmp.(i) and k1 = e.k.(0).(i) in
      for j = lo to hi - 1 do
        yt.(j) <- yi.(j) +. (half *. k1.(j))
      done
    done;
    Array.fill e.times lo (hi - lo) (!t +. (h' /. 2.));
    e.f ~times:e.times ~y:e.ytmp ~ydot:e.k.(1) ~lo ~hi;
    for i = 0 to n - 1 do
      let yi = e.y.(i) and yt = e.ytmp.(i) and k2 = e.k.(1).(i) in
      for j = lo to hi - 1 do
        yt.(j) <- yi.(j) +. (half *. k2.(j))
      done
    done;
    e.f ~times:e.times ~y:e.ytmp ~ydot:e.k.(2) ~lo ~hi;
    for i = 0 to n - 1 do
      let yi = e.y.(i) and yt = e.ytmp.(i) and k3 = e.k.(2).(i) in
      for j = lo to hi - 1 do
        yt.(j) <- yi.(j) +. (h' *. k3.(j))
      done
    done;
    Array.fill e.times lo (hi - lo) (!t +. h');
    e.f ~times:e.times ~y:e.ytmp ~ydot:e.k.(3) ~lo ~hi;
    for i = 0 to n - 1 do
      let yi = e.y.(i) in
      let k1 = e.k.(0).(i)
      and k2 = e.k.(1).(i)
      and k3 = e.k.(2).(i)
      and k4 = e.k.(3).(i) in
      for j = lo to hi - 1 do
        yi.(j) <-
          yi.(j)
          +. (h' /. 6.
              *. (k1.(j) +. (2. *. k2.(j)) +. (2. *. k3.(j)) +. k4.(j)))
      done
    done;
    e.rhs_batches <- e.rhs_batches + 4;
    t := !t +. h';
    for j = lo to hi - 1 do
      let m = e.perm.(j) in
      e.steps.(m) <- e.steps.(m) + 1;
      e.rhs_evals.(m) <- e.rhs_evals.(m) + 4;
      record_lane e !t j
    done
  done;
  report e ?trajectories:(if record then Some (trajectories_of e) else None)

(* ---- adaptive RKF45 with group split/merge ---- *)

(* Runge-Kutta-Fehlberg 4(5) coefficients, same literals as Rk.rkf45. *)
let rkf_c = [| 0.; 0.25; 3. /. 8.; 12. /. 13.; 1.; 0.5 |]

let rkf_a =
  [|
    [||];
    [| 0.25 |];
    [| 3. /. 32.; 9. /. 32. |];
    [| 1932. /. 2197.; -7200. /. 2197.; 7296. /. 2197. |];
    [| 439. /. 216.; -8.; 3680. /. 513.; -845. /. 4104. |];
    [| -8. /. 27.; 2.; -3544. /. 2565.; 1859. /. 4104.; -11. /. 40. |];
  |]

let rkf_b5 =
  [| 16. /. 135.; 0.; 6656. /. 12825.; 28561. /. 56430.; -9. /. 50.; 2. /. 55. |]

let rkf_b4 = [| 25. /. 216.; 0.; 1408. /. 2565.; 2197. /. 4104.; -0.2; 0. |]

(* Standard step-size update with safety factor, clamped growth —
   identical to the scalar controller. *)
let step_factor e =
  if e = 0. then 5. else Float.min 5. (Float.max 0.2 (0.9 *. (e ** -0.2)))

(* Stable partition of lanes [lo..hi-1]: passing lanes (error <= 1)
   first, both halves in original order, applied as a column permute to
   every live SoA row.  Float columns are copied bitwise, so the
   reordering cannot perturb any member's trajectory.  Returns the
   number of passing lanes. *)
let partition_passing e lo hi =
  let n = hi - lo in
  let idx = e.iscratch in
  let p = ref 0 in
  for j = lo to hi - 1 do
    if e.lane_err.(j) <= 1. then begin
      idx.(lo + !p) <- j;
      incr p
    end
  done;
  let npass = !p in
  for j = lo to hi - 1 do
    if not (e.lane_err.(j) <= 1.) then begin
      idx.(lo + !p) <- j;
      incr p
    end
  done;
  let apply_row row =
    let s = e.scratch in
    for q = 0 to n - 1 do
      s.(lo + q) <- row.(idx.(lo + q))
    done;
    Array.blit s lo row lo n
  in
  for i = 0 to e.dim - 1 do
    apply_row e.y.(i);
    apply_row e.y5.(i)
  done;
  apply_row e.lane_err;
  let si = e.iscratch2 in
  for q = 0 to n - 1 do
    si.(lo + q) <- e.perm.(idx.(lo + q))
  done;
  Array.blit si lo e.perm lo n;
  npass

let rkf45 ?(record = false) ?(atol = 1e-8) ?(rtol = 1e-6) ?h0
    ?(max_steps = 1_000_000) e ~t0 ~tend =
  let n = e.dim in
  let span = tend -. t0 in
  if span <= 0. then invalid_arg "Ensemble.rkf45: tend <= t0";
  if record then start_recording e t0;
  let h_init = match h0 with Some h -> h | None -> span /. 100. in
  let budget_error t h =
    Om_guard.Om_error.(
      error
        (Step_failure
           {
             solver = "rkf45-ensemble";
             time = t;
             step = h;
             retries = 0;
             reason = "step budget exhausted";
           }))
  in
  (* Advance lanes [lo..hi-1] from [t_start] to [t_goal] in lockstep,
     splitting recursively when error estimates diverge. *)
  let rec advance lo hi t_start t_goal h_start depth =
    if depth > e.max_depth then e.max_depth <- depth;
    let t = ref t_start and h = ref h_start in
    while !t < t_goal -. 1e-12 do
      e.attempts <- e.attempts + 1;
      if e.attempts > max_steps then budget_error !t !h;
      let h' = Float.min !h (t_goal -. !t) in
      (* Six stages; per lane the accumulation order matches Rk.rkf45. *)
      for s = 0 to 5 do
        let asr_ = rkf_a.(s) in
        for i = 0 to n - 1 do
          let yt = e.ytmp.(i) and yi = e.y.(i) in
          for j = lo to hi - 1 do
            let acc = ref yi.(j) in
            for q = 0 to s - 1 do
              acc := !acc +. (h' *. asr_.(q) *. e.k.(q).(i).(j))
            done;
            yt.(j) <- !acc
          done
        done;
        Array.fill e.times lo (hi - lo) (!t +. (rkf_c.(s) *. h'));
        e.f ~times:e.times ~y:e.ytmp ~ydot:e.k.(s) ~lo ~hi
      done;
      e.rhs_batches <- e.rhs_batches + 6;
      for j = lo to hi - 1 do
        let m = e.perm.(j) in
        e.rhs_evals.(m) <- e.rhs_evals.(m) + 6
      done;
      (* 5th-order solution and per-lane WRMS error, scalar formulas. *)
      for i = 0 to n - 1 do
        let yi = e.y.(i) and y5i = e.y5.(i) in
        for j = lo to hi - 1 do
          let acc = ref yi.(j) in
          for s = 0 to 5 do
            acc := !acc +. (h' *. rkf_b5.(s) *. e.k.(s).(i).(j))
          done;
          y5i.(j) <- !acc
        done
      done;
      for j = lo to hi - 1 do
        let acc = ref 0. in
        for i = 0 to n - 1 do
          let erri = ref 0. in
          for s = 0 to 5 do
            erri := !erri +. (h' *. (rkf_b5.(s) -. rkf_b4.(s)) *. e.k.(s).(i).(j))
          done;
          let w =
            atol
            +. (rtol
                *. Float.max (Float.abs e.y.(i).(j)) (Float.abs e.y5.(i).(j)))
          in
          let r = !erri /. w in
          acc := !acc +. (r *. r)
        done;
        e.lane_err.(j) <- Float.sqrt (!acc /. float_of_int n)
      done;
      let npass = ref 0 in
      for j = lo to hi - 1 do
        if e.lane_err.(j) <= 1. then incr npass
      done;
      let max_err jlo jhi =
        let m = ref 0. in
        for j = jlo to jhi - 1 do
          if e.lane_err.(j) > !m then m := e.lane_err.(j)
        done;
        !m
      in
      let accept jlo jhi t1 =
        for i = 0 to n - 1 do
          Array.blit e.y5.(i) jlo e.y.(i) jlo (jhi - jlo)
        done;
        for j = jlo to jhi - 1 do
          let m = e.perm.(j) in
          e.steps.(m) <- e.steps.(m) + 1;
          record_lane e t1 j
        done
      in
      if !npass = hi - lo then begin
        let emax = max_err lo hi in
        accept lo hi (!t +. h');
        t := !t +. h';
        h := h' *. step_factor emax
      end
      else if !npass = 0 then begin
        for j = lo to hi - 1 do
          let m = e.perm.(j) in
          e.rejected.(m) <- e.rejected.(m) + 1
        done;
        h := h' *. step_factor (max_err lo hi)
      end
      else begin
        (* Mixed outcome: split.  Passing lanes accept and continue as
           the lead group; failing lanes sub-step to the rendezvous
           point t + h' and merge back.  The lead group's next step size
           depends only on the passing lanes' errors, so a stiff member
           never perturbs the others. *)
        let np = partition_passing e lo hi in
        e.splits <- e.splits + 1;
        let t1 = !t +. h' in
        let emax_pass = max_err lo (lo + np) in
        let emax_fail = max_err (lo + np) hi in
        for j = lo + np to hi - 1 do
          let m = e.perm.(j) in
          e.rejected.(m) <- e.rejected.(m) + 1
        done;
        accept lo (lo + np) t1;
        advance (lo + np) hi !t t1 (h' *. step_factor emax_fail) (depth + 1);
        e.merges <- e.merges + 1;
        t := t1;
        h := h' *. step_factor emax_pass
      end
    done
  in
  advance 0 e.width t0 tend h_init 0;
  report e ?trajectories:(if record then Some (trajectories_of e) else None)
