(** Sparse Jacobians for the stiff Newton path.

    A compressed-sparse-row pattern drives three cooperating pieces:
    greedy distance-2 column {{!color_columns}coloring} so a
    finite-difference Jacobian costs one RHS evaluation per {e color}
    instead of per column (Curtis–Powell–Reid compression, the
    sparse-AD route of Peleš & Klus, arXiv 1505.00838); compressed
    assembly of either symbolic or colored-difference values into the
    CSR value array; and a left-looking (Gilbert–Peierls) sparse
    {{!lu_factor}LU} with partial pivoting.

    The LU is engineered to replay the dense {!Linalg.lu_factor}
    arithmetic operation-for-operation — updates apply in ascending
    pivot order, the pivot search reproduces the dense tie-breaking
    through a row-position permutation, and the triangular solves walk
    rows in the dense loop order — so a solver switched between the
    dense and sparse paths produces bitwise-identical trajectories
    (structural zeros are exact [+0.] in the dense path, making every
    skipped operation a bitwise no-op). *)

type pattern = {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1] *)
  col_ind : int array;  (** ascending within each row *)
}
(** Structural nonzero positions in compressed sparse row form. *)

val pattern_of_entries : rows:int -> cols:int -> (int * int) list -> pattern
(** Build a pattern from [(row, col)] positions; duplicates are merged.
    @raise Invalid_argument on out-of-range positions. *)

val pattern_of_dense : ?tol:float -> Linalg.mat -> pattern
(** Positions with magnitude above [tol] (default [0.], i.e. any
    nonzero). *)

val nnz : pattern -> int

val density : pattern -> float
(** [nnz / (rows * cols)], 0 for empty shapes. *)

val mem : pattern -> int -> int -> bool
val index : pattern -> int -> int -> int
(** CSR slot of [(i, j)], or [-1] when the position is structural
    zero. *)

type t = { pat : pattern; v : float array }
(** A matrix: values parallel to [pat.col_ind]. *)

val create : pattern -> t
(** All-zero values. *)

val of_dense : ?tol:float -> Linalg.mat -> t
val to_dense : t -> Linalg.mat
val get : t -> int -> int -> float
val mat_vec : t -> float array -> float array

type coloring = {
  ncolors : int;
  color : int array;  (** color of each column, in [0 .. ncolors-1] *)
  groups : int array array;  (** columns of each color, ascending *)
}

val color_columns : pattern -> coloring
(** Greedy distance-2 coloring in natural column order: two columns
    sharing a row never share a color, so all columns of one color can
    be perturbed in a single RHS evaluation.  On a banded pattern with
    [ml + mu + 1] diagonals this uses at most [ml + mu + 1] colors. *)

(** {1 Colored finite differences} *)

type fd_ws
(** Workspace for one system: per-group perturbed points and RHS
    values, plus per-column steps.  Reusable across evaluations. *)

val make_fd_ws : pattern -> coloring -> fd_ws
val fd_groups : fd_ws -> int

val fd_prepare : ?eps:float -> fd_ws -> y:float array -> unit
(** Fill the perturbed points: group [g] is [y] with every column of
    color [g] bumped by the {!Jacobian.numeric} step rule
    [eps * max 1 |y_j|]. *)

val fd_points : fd_ws -> float array array
(** The perturbed states, one per group; evaluate the RHS at each and
    write the results into {!fd_values} (the caller owns this loop so
    it can run the groups in parallel). *)

val fd_values : fd_ws -> float array array

val fd_scatter : fd_ws -> f0:float array -> jac:t -> unit
(** Decompress: every structural entry [(i, j)] becomes
    [(f_pert.(color j).(i) - f0.(i)) / h_j].  Because the coloring is
    distance-2, row [i] reads at most one perturbed column per group,
    so each entry is bitwise the single-column forward difference of
    {!Jacobian.numeric}.
    @raise Invalid_argument if [jac] was not built on the workspace's
    pattern. *)

(** {1 Sparse LU} *)

type lu

val lu_factor : t -> lu
(** Left-looking factorisation with partial pivoting, numerically
    identical to {!Linalg.lu_factor} (see the module preamble).
    @raise Linalg.Singular with the same pivot-step index as the dense
    code when a pivot column is exactly zero. *)

val lu_solve : lu -> float array -> float array
(** Bitwise-identical to {!Linalg.lu_solve} on the corresponding dense
    factorisation. *)

val lu_nnz : lu -> int
(** Stored entries of L and U including the unit/actual diagonals —
    [nnz] of the input plus fill-in. *)

val rcm_ordering : pattern -> int array
(** Reverse Cuthill–McKee ordering of the symmetrized pattern:
    [perm.(k)] is the original index placed at position [k].  A
    fill-reducing symmetric permutation for the LU; note that any
    reordering changes the rounding of the factorisation, so the
    solvers only apply it when the caller asks (the bitwise
    dense-equivalence guarantee holds for the natural order). *)

val permute_symmetric : t -> int array -> t
(** [P A Pᵀ] for the permutation [perm.(new) = old]. *)

val solve_with_ordering : t -> perm:int array -> float array -> float array
(** Solve [A x = b] by factoring the symmetrically permuted matrix and
    unpermuting the solution; pair with {!rcm_ordering}. *)

(** {1 Newton iteration matrix} *)

type newton
(** Workspace for [M = alpha*I - beta*J]: the merged pattern (J plus
    the full diagonal), a scatter map from J slots to M slots, and the
    M value array, all built once per integration. *)

val make_newton : pattern -> newton
val newton_matrix : newton -> t

val newton_assemble : newton -> jac:t -> alpha:float -> beta:float -> unit
(** Refill M from the current J values; bitwise equal to the dense
    [(if i=k then alpha else 0.) -. beta *. j.(i).(k)] construction on
    every structural entry. *)
