type counters = {
  mutable rhs_calls : int;
  mutable jac_calls : int;
  mutable steps : int;
  mutable rejected : int;
  mutable newton_iters : int;
  mutable lu_factorisations : int;
  mutable retries : int;
}

type jac_mode = Dense | Banded of int * int | Sparse | Auto

type t = {
  dim : int;
  names : string array;
  f : float -> float array -> float array -> unit;
  jac : (float -> float array -> Linalg.mat -> unit) option;
  symbolic : (string * Om_expr.Expr.t) list option;
  mutable sparsity : Sparse.pattern option;
  mutable sjac : (float -> float array -> float array -> unit) option;
  counters : counters;
}

let fresh_counters () =
  {
    rhs_calls = 0;
    jac_calls = 0;
    steps = 0;
    rejected = 0;
    newton_iters = 0;
    lu_factorisations = 0;
    retries = 0;
  }

let reset_counters sys =
  let c = sys.counters in
  c.rhs_calls <- 0;
  c.jac_calls <- 0;
  c.steps <- 0;
  c.rejected <- 0;
  c.newton_iters <- 0;
  c.lu_factorisations <- 0;
  c.retries <- 0

let pp_counters ppf c =
  Fmt.pf ppf "steps=%d rhs=%d jac=%d rejected=%d newton=%d lu=%d retries=%d"
    c.steps c.rhs_calls c.jac_calls c.rejected c.newton_iters
    c.lu_factorisations c.retries

let make ?names ?jac ?sparsity ?sjac ~dim f =
  let names =
    match names with
    | Some a ->
        if Array.length a <> dim then
          invalid_arg "Odesys.make: names length mismatch";
        a
    | None -> Array.init dim (Printf.sprintf "y%d")
  in
  (match sparsity with
  | Some (p : Sparse.pattern) when p.rows <> dim || p.cols <> dim ->
      invalid_arg "Odesys.make: sparsity shape mismatch"
  | _ -> ());
  { dim; names; f; jac; symbolic = None; sparsity; sjac;
    counters = fresh_counters () }

let rhs_into sys t y ydot =
  sys.counters.rhs_calls <- sys.counters.rhs_calls + 1;
  sys.f t y ydot

let rhs sys t y =
  let ydot = Array.make sys.dim 0. in
  rhs_into sys t y ydot;
  ydot

(* Structural sparsity: column j appears in row i iff equation i reads
   state j.  This is the exact read set of the RHS — a superset of the
   nonzero-derivative positions — which is what colored finite
   differences need: a perturbation outside the pattern cannot change
   f_i, so out-of-pattern forward differences are exactly [+0.]. *)
let pattern_of_equations eqs =
  let dim = List.length eqs in
  let names = Array.of_list (List.map fst eqs) in
  let index = Hashtbl.create (2 * dim) in
  Array.iteri (fun i s -> Hashtbl.replace index s i) names;
  let entries =
    List.concat
      (List.mapi
         (fun i (_, e) ->
           List.filter_map
             (fun v ->
               Option.map (fun c -> (i, c)) (Hashtbl.find_opt index v))
             (Om_expr.Expr.vars e))
         eqs)
  in
  Sparse.pattern_of_entries ~rows:dim ~cols:dim entries

let of_equations ?(time_var = "t") ?(with_symbolic_jacobian = true) eqs =
  let states = List.map fst eqs in
  let module S = Set.Make (String) in
  let state_set =
    List.fold_left
      (fun s v ->
        if S.mem v s then invalid_arg ("Odesys.of_equations: duplicate " ^ v)
        else S.add v s)
      S.empty states
  in
  List.iter
    (fun (_, e) ->
      List.iter
        (fun v ->
          if (not (S.mem v state_set)) && v <> time_var then
            invalid_arg ("Odesys.of_equations: free variable " ^ v))
        (Om_expr.Expr.vars e))
    eqs;
  let dim = List.length eqs in
  let names = Array.of_list states in
  (* Value vector layout: states first, then time. *)
  let layout = Array.append names [| time_var |] in
  let fns =
    Array.of_list (List.map (fun (_, e) -> Om_expr.Eval.eval_fn layout e) eqs)
  in
  let buf = Array.make (dim + 1) 0. in
  let f t y ydot =
    Array.blit y 0 buf 0 dim;
    buf.(dim) <- t;
    for i = 0 to dim - 1 do
      ydot.(i) <- fns.(i) buf
    done
  in
  let sparsity = pattern_of_equations eqs in
  let jac, sjac =
    if not with_symbolic_jacobian then (None, None)
    else begin
      (* One derivative closure per structural entry, in CSR order. *)
      let eq_arr = Array.of_list (List.map snd eqs) in
      let ders =
        Array.init (Sparse.nnz sparsity) (fun _ -> (0, 0, fun _ -> 0.))
      in
      for i = 0 to dim - 1 do
        for k = sparsity.row_ptr.(i) to sparsity.row_ptr.(i + 1) - 1 do
          let c = sparsity.col_ind.(k) in
          ders.(k) <-
            ( i,
              c,
              Om_expr.Eval.eval_fn layout
                (Om_expr.Deriv.diff names.(c) eq_arr.(i)) )
        done
      done;
      let jac t y (m : Linalg.mat) =
        Array.blit y 0 buf 0 dim;
        buf.(dim) <- t;
        Array.iter (fun row -> Array.fill row 0 dim 0.) m;
        Array.iter (fun (i, c, d) -> m.(i).(c) <- d buf) ders
      in
      let sjac t y (v : float array) =
        Array.blit y 0 buf 0 dim;
        buf.(dim) <- t;
        Array.iteri (fun k (_, _, d) -> v.(k) <- d buf) ders
      in
      (Some jac, Some sjac)
    end
  in
  { dim; names; f; jac; symbolic = Some eqs; sparsity = Some sparsity; sjac;
    counters = fresh_counters () }

type trajectory = { ts : float array; states : float array array }

let final_state tr = tr.states.(Array.length tr.states - 1)

let sample tr ~times =
  let n = Array.length tr.ts in
  if n = 0 then invalid_arg "Odesys.sample: empty trajectory";
  let dim = Array.length tr.states.(0) in
  Array.map
    (fun t ->
      if t <= tr.ts.(0) then Array.copy tr.states.(0)
      else if t >= tr.ts.(n - 1) then Array.copy tr.states.(n - 1)
      else begin
        (* Binary search for the bracketing step. *)
        let lo = ref 0 and hi = ref (n - 1) in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if tr.ts.(mid) <= t then lo := mid else hi := mid
        done;
        let t0 = tr.ts.(!lo) and t1 = tr.ts.(!hi) in
        let w = if t1 > t0 then (t -. t0) /. (t1 -. t0) else 0. in
        Array.init dim (fun i ->
            tr.states.(!lo).(i)
            +. (w *. (tr.states.(!hi).(i) -. tr.states.(!lo).(i))))
      end)
    times

let column tr name sys =
  let idx =
    match Array.find_index (fun n -> n = name) sys.names with
    | Some i -> i
    | None -> invalid_arg ("Odesys.column: unknown state " ^ name)
  in
  Array.map (fun y -> y.(idx)) tr.states
