(** Backward differentiation formulas (BDF) of orders 1–3 with modified
    Newton iteration — the stiff half of LSODA (paper §3.2.1: "one of the
    solvers which implements BDF methods, which are usually used to solve
    stiff ODEs").

    Fixed step size.  The Newton iteration matrix [I - h*beta*J] is
    factorised once per step and reused across iterations (modified
    Newton); the Jacobian comes from the system's analytic function when
    available, otherwise finite differences.  [banded] declares the
    Jacobian's band structure (see {!Banded}). *)

val integrate :
  ?order:int ->
  ?newton_tol:float ->
  ?max_newton:int ->
  ?banded:int * int ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  h:float ->
  Odesys.trajectory
(** @raise Invalid_argument for orders outside 1..3.
    @raise Om_guard.Om_error.Error ([Newton_failure]) if Newton fails to
    converge. *)

val solve_implicit_stage :
  ?banded:int * int ->
  Odesys.t ->
  tol:float ->
  max_iter:int ->
  t_next:float ->
  beta_h:float ->
  rhs_const:float array ->
  alpha0:float ->
  y_guess:float array ->
  float array
(** Solve [alpha0 * y = rhs_const + beta_h * f(t_next, y)] by modified
    Newton; shared with the LSODA-style driver.  With [banded = (ml, mu)]
    the Newton matrix factorises inside the band in O(n (ml+mu)^2) — the
    right choice for method-of-lines PDE systems.
    @raise Om_guard.Om_error.Error ([Newton_failure]) on
    non-convergence. *)
