(** Backward differentiation formulas (BDF) of orders 1–3 with modified
    Newton iteration — the stiff half of LSODA (paper §3.2.1: "one of the
    solvers which implements BDF methods, which are usually used to solve
    stiff ODEs").

    Fixed step size.  The Newton iteration matrix [I - h*beta*J] is
    factorised once per step and reused across iterations (modified
    Newton); the Jacobian comes from the system's analytic function when
    available, otherwise finite differences.  [banded] declares the
    Jacobian's band structure (see {!Banded}); [jac_mode] selects the
    dense/banded/sparse Newton path ({!Odesys.jac_mode}, default
    [Auto]), with the sparse path producing trajectories bitwise equal
    to the dense one (see {!Sparse}). *)

val integrate :
  ?order:int ->
  ?newton_tol:float ->
  ?max_newton:int ->
  ?banded:int * int ->
  ?jac_mode:Odesys.jac_mode ->
  ?jac_batch:Jacobian.batch_rhs ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  h:float ->
  Odesys.trajectory
(** [jac_batch] lets the sparse finite-difference path evaluate its
    colored column groups through a caller-supplied (possibly parallel)
    batch evaluator.
    @raise Invalid_argument for orders outside 1..3.
    @raise Om_guard.Om_error.Error ([Newton_failure]) if Newton fails to
    converge or the iteration matrix is singular. *)

val solve_implicit_stage :
  ?banded:int * int ->
  ?jac_mode:Odesys.jac_mode ->
  Odesys.t ->
  tol:float ->
  max_iter:int ->
  t_next:float ->
  beta_h:float ->
  rhs_const:float array ->
  alpha0:float ->
  y_guess:float array ->
  float array
(** Solve [alpha0 * y = rhs_const + beta_h * f(t_next, y)] by modified
    Newton; shared with the LSODA-style driver.  With [banded = (ml, mu)]
    the Newton matrix factorises inside the band in O(n (ml+mu)^2) — the
    right choice for method-of-lines PDE systems.  Resolves the Jacobian
    plan per call; drivers that step repeatedly should resolve once with
    {!Jacobian.plan} and call {!solve_implicit_stage_with}.
    @raise Om_guard.Om_error.Error ([Newton_failure]) on non-convergence
    or a singular iteration matrix. *)

val solve_implicit_stage_with :
  Jacobian.plan ->
  Odesys.t ->
  tol:float ->
  max_iter:int ->
  t_next:float ->
  beta_h:float ->
  rhs_const:float array ->
  alpha0:float ->
  y_guess:float array ->
  float array
(** {!solve_implicit_stage} against a pre-resolved plan, so the sparse
    workspace (pattern, coloring, fd buffers) is built once per
    integration rather than once per step. *)
