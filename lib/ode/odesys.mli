(** Explicit first-order ODE systems [y'(t) = f(t, y)].

    This is the object handed to every solver; paper §2.4 calls [f] the RHS
    function and makes it the sole target of parallelisation.  Systems can
    be built from OCaml closures or elaborated from symbolic equations, in
    which case the symbolic right-hand sides are kept for the code
    generator. *)

type counters = {
  mutable rhs_calls : int;
  mutable jac_calls : int;
  mutable steps : int;
  mutable rejected : int;
  mutable newton_iters : int;
  mutable lu_factorisations : int;
  mutable retries : int;
      (** solver step retries after a guarded runtime fault
          ({!Om_guard.Om_error.t}), counted by the backoff loops in
          [Rk] and [Lsoda] *)
}

type jac_mode = Dense | Banded of int * int | Sparse | Auto
(** How the stiff solvers evaluate and factor the Newton matrix.
    [Dense] is the classic full-matrix path; [Banded (ml, mu)] declares
    the band structure (see {!Banded}); [Sparse] uses the system's
    sparsity pattern with colored compressed columns and the sparse LU
    of {!Sparse}; [Auto] (every solver's default) picks [Sparse] when a
    pattern is known, the dimension is large enough, and the density is
    low enough to pay off, else [Dense].  Dense and sparse produce
    bitwise-identical trajectories (see {!Sparse}). *)

type t = {
  dim : int;
  names : string array;  (** state variable names, length [dim] *)
  f : float -> float array -> float array -> unit;
      (** [f t y ydot] writes the derivatives into [ydot]. *)
  jac : (float -> float array -> Linalg.mat -> unit) option;
      (** Optional analytic Jacobian df/dy, written in place. *)
  symbolic : (string * Om_expr.Expr.t) list option;
      (** [(state, rhs)] pairs when elaborated from equations. *)
  mutable sparsity : Sparse.pattern option;
      (** Structural nonzeros of df/dy — the RHS read sets, a superset
          of the nonzero-derivative positions.  Enables the sparse
          Newton path. *)
  mutable sjac : (float -> float array -> float array -> unit) option;
      (** Optional analytic sparse Jacobian: [sjac t y v] writes the
          values of every structural entry into [v] in the CSR order of
          [sparsity]. *)
  counters : counters;
}

val fresh_counters : unit -> counters
val reset_counters : t -> unit

val pp_counters : counters Fmt.t
(** One-line rendering:
    [steps=.. rhs=.. jac=.. rejected=.. newton=.. lu=.. retries=..]. *)

val make :
  ?names:string array ->
  ?jac:(float -> float array -> Linalg.mat -> unit) ->
  ?sparsity:Sparse.pattern ->
  ?sjac:(float -> float array -> float array -> unit) ->
  dim:int ->
  (float -> float array -> float array -> unit) ->
  t
(** @raise Invalid_argument when [names] or [sparsity] shapes disagree
    with [dim]. *)

val rhs : t -> float -> float array -> float array
(** Allocating wrapper around [f] that bumps the call counter. *)

val rhs_into : t -> float -> float array -> float array -> unit
(** Non-allocating [f] call that bumps the call counter. *)

val pattern_of_equations : (string * Om_expr.Expr.t) list -> Sparse.pattern
(** The read-set sparsity pattern of symbolic equations: entry [(i, j)]
    is structural iff equation [i]'s right-hand side mentions state [j].
    A superset of the nonzero-derivative positions, safe for colored
    finite differences — useful for attaching a pattern to a system
    whose RHS is compiled separately (e.g. the runtime's task-parallel
    evaluator) but whose equations are known. *)

val of_equations :
  ?time_var:string -> ?with_symbolic_jacobian:bool ->
  (string * Om_expr.Expr.t) list ->
  t
(** Elaborate symbolic first-order equations [x' = rhs].  Each right-hand
    side may reference any state variable and the time variable (default
    ["t"]).  With [with_symbolic_jacobian] (default true) the analytic
    Jacobian is derived symbolically, the paper's "extra function dedicated
    to computing the Jacobian".  The structural sparsity pattern (each
    equation's state read set) is always recorded in [sparsity]; with the
    symbolic Jacobian enabled, the per-entry derivatives are also compiled
    into a sparse writer [sjac].
    @raise Invalid_argument on duplicate states or free variables that are
    neither states nor time. *)

type trajectory = {
  ts : float array;
  states : float array array;  (** [states.(k)] is the state at [ts.(k)] *)
}

val final_state : trajectory -> float array

val column : trajectory -> string -> t -> float array
(** Time series of one named state variable. *)

val sample : trajectory -> times:float array -> float array array
(** Linear interpolation of the trajectory at the given (ascending) query
    times; endpoints clamp.  Used for plotting and for comparing
    trajectories computed on different step sequences.
    @raise Invalid_argument on an empty trajectory. *)
