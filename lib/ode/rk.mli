(** Explicit Runge–Kutta solvers: fixed-step Euler/Heun/RK4 ("single-step
    methods" of paper §2.4) and adaptive RKF45 with PI step control. *)

type fixed_stepper
(** One fixed step [t, y, h -> y(t+h)]. *)

val euler : fixed_stepper
val heun : fixed_stepper
val rk4 : fixed_stepper

val step : fixed_stepper -> Odesys.t -> float -> float array -> float -> float array

val integrate_fixed :
  ?max_retries:int ->
  fixed_stepper ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  h:float ->
  Odesys.trajectory
(** March from [t0] to [tend] with constant step (the last step is shortened
    to land exactly on [tend]).  Records every step.

    A guarded runtime fault ({!Om_guard.Om_error.Error}) raised by the RHS
    during a step is answered with backoff: the step is first retried at
    the {e same} size (a transient fault — e.g. an injected poison that
    fires once — then recovers with a bitwise-identical trajectory), then
    with halved sizes, up to [max_retries] (default 8) attempts.
    @raise Om_guard.Om_error.Error ([Step_failure], naming the offending
    equation in [reason]) when the retry budget is exhausted. *)

val rkf45 :
  ?atol:float ->
  ?rtol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?max_retries:int ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  Odesys.trajectory
(** Adaptive Runge–Kutta–Fehlberg 4(5).  Steps are accepted when the
    embedded error estimate passes the weighted RMS test with weights
    [atol + rtol * |y|].  Guarded runtime faults back off like
    {!integrate_fixed}: same-size retry first, then halving, bounded by
    [max_retries] (default 8) consecutive attempts.
    @raise Om_guard.Om_error.Error ([Step_failure]) if [max_steps]
    (default 1_000_000) or the retry budget is exhausted. *)
