(** Explicit Runge–Kutta solvers: fixed-step Euler/Heun/RK4 ("single-step
    methods" of paper §2.4) and adaptive RKF45 with PI step control. *)

type fixed_stepper
(** One fixed step [t, y, h -> y(t+h)]. *)

val euler : fixed_stepper
val heun : fixed_stepper
val rk4 : fixed_stepper

val step : fixed_stepper -> Odesys.t -> float -> float array -> float -> float array

val integrate_fixed :
  fixed_stepper ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  h:float ->
  Odesys.trajectory
(** March from [t0] to [tend] with constant step (the last step is shortened
    to land exactly on [tend]).  Records every step. *)

val rkf45 :
  ?atol:float ->
  ?rtol:float ->
  ?h0:float ->
  ?max_steps:int ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  Odesys.trajectory
(** Adaptive Runge–Kutta–Fehlberg 4(5).  Steps are accepted when the
    embedded error estimate passes the weighted RMS test with weights
    [atol + rtol * |y|].
    @raise Failure if [max_steps] (default 1_000_000) is exhausted. *)
