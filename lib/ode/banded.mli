(** Banded linear algebra.

    ODEPACK's solvers accept banded Jacobians (LSODA's [jt = 4, 5]): for
    method-of-lines PDE systems the Jacobian has a small bandwidth and the
    Newton iteration matrix factorises in O(n b^2) instead of O(n^3).
    Storage follows the LINPACK band convention: [a.(r).(j)] holds matrix
    entry [(i, j)] with [r = i - j + mu] (diagonals as rows). *)

type t = {
  n : int;
  ml : int;  (** lower bandwidth *)
  mu : int;  (** upper bandwidth *)
  store : float array array;  (** (ml + mu + 1) rows by n columns *)
}

val create : n:int -> ml:int -> mu:int -> t
val get : t -> int -> int -> float
(** Zero outside the band. *)

val set : t -> int -> int -> float -> unit
(** @raise Invalid_argument outside the band. *)

val of_dense : ml:int -> mu:int -> Linalg.mat -> t
(** @raise Invalid_argument if the dense matrix has entries outside the
    band. *)

val to_dense : t -> Linalg.mat
val mat_vec : t -> float array -> float array

type lu

val lu_factor : t -> lu
(** Gaussian elimination with partial pivoting inside the band (fill-in
    widens the upper bandwidth to [ml + mu]).  @raise Linalg.Singular *)

val lu_solve : lu -> float array -> float array

val bandwidth_of_jacobian : (int * int * 'a) list -> int * int
(** [(ml, mu)] of a sparse entry list [(row, col, _)] — the natural input
    from {!Om_codegen.Jacobian_gen}-style structures. *)
