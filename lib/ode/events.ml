type event = {
  label : string;
  g : float -> float array -> float;
}

type occurrence = {
  event_index : int;
  event_label : string;
  time : float;
  state : float array;
  rising : bool;
}

type result = {
  trajectory : Odesys.trajectory;
  occurrences : occurrence list;
  lsoda : Lsoda.result;
}

(* Linear interpolation between two saved states. *)
let interp t0 y0 t1 y1 t =
  let w = (t -. t0) /. (t1 -. t0) in
  Array.init (Array.length y0) (fun i -> y0.(i) +. (w *. (y1.(i) -. y0.(i))))

(* Bisection for the zero of [g] along the interpolated segment; the
   interpolation anchors stay at the original step endpoints while the
   time bracket narrows. *)
let refine ~t_tol g ta ya tb yb =
  let interp_t t = interp ta ya tb yb t in
  let ga = g ta ya in
  let rec go lo hi glo k =
    let tm = 0.5 *. (lo +. hi) in
    if hi -. lo <= t_tol || k > 60 then (tm, interp_t tm)
    else
      let ym = interp_t tm in
      let gm = g tm ym in
      if (glo <= 0. && gm > 0.) || (glo > 0. && gm <= 0.) then
        go lo tm glo (k + 1)
      else go tm hi gm (k + 1)
  in
  go ta tb ga 0

let integrate ?atol ?rtol ?t_tol ?(stop_at_first = false) ~events sys ~t0 ~y0
    ~tend =
  let lsoda = Lsoda.integrate ?atol ?rtol sys ~t0 ~y0 ~tend in
  let tr = lsoda.trajectory in
  let t_tol =
    match t_tol with Some v -> v | None -> 1e-9 *. (tend -. t0)
  in
  let events = Array.of_list events in
  let prev = Array.map (fun e -> e.g tr.ts.(0) tr.states.(0)) events in
  let occurrences = ref [] in
  let n = Array.length tr.ts in
  let cut = ref n in
  (try
     for k = 1 to n - 1 do
       let t1 = tr.ts.(k) and y1 = tr.states.(k) in
       Array.iteri
         (fun i e ->
           let g1 = e.g t1 y1 in
           let g0 = prev.(i) in
           if (g0 < 0. && g1 >= 0.) || (g0 > 0. && g1 <= 0.) then begin
             let ta = tr.ts.(k - 1) and ya = tr.states.(k - 1) in
             let time, state = refine ~t_tol e.g ta ya t1 y1 in
             occurrences :=
               {
                 event_index = i;
                 event_label = e.label;
                 time;
                 state;
                 rising = g0 < 0.;
               }
               :: !occurrences;
             if stop_at_first then begin
               cut := k + 1;
               raise Exit
             end
           end;
           prev.(i) <- g1)
         events
     done
   with Exit -> ());
  let trajectory =
    if !cut >= n then tr
    else
      {
        Odesys.ts = Array.sub tr.ts 0 !cut;
        states = Array.sub tr.states 0 !cut;
      }
  in
  {
    trajectory;
    occurrences = List.rev !occurrences;
    lsoda;
  }

let crossings r label =
  List.filter (fun o -> o.event_label = label) r.occurrences
