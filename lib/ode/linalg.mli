(** Dense linear algebra for the implicit ODE solvers.

    Matrices are row-major [float array array]; all operations allocate
    fresh results unless documented otherwise.  The implicit (BDF) solver
    factorises the Newton iteration matrix with partial-pivoting LU — the
    same structure as LINPACK's [dgefa]/[dgesl] used by ODEPACK. *)

type mat = float array array

val make : int -> int -> float -> mat
val identity : int -> mat
val copy : mat -> mat
val dims : mat -> int * int
val mat_vec : mat -> float array -> float array
val mat_mul : mat -> mat -> mat
val transpose : mat -> mat
val scale : float -> mat -> mat
val add : mat -> mat -> mat
val sub : mat -> mat -> mat

type lu
(** Packed LU factorisation with its pivot permutation. *)

exception Singular of int
(** Raised with the offending column when a pivot vanishes. *)

val lu_factor : mat -> lu
(** Factor a square matrix (the input is copied). @raise Singular *)

val lu_solve : lu -> float array -> float array
val lu_det : lu -> float

val solve : mat -> float array -> float array
(** Convenience: factor then solve once. @raise Singular *)

val inverse : mat -> mat
(** @raise Singular *)

val norm_inf : float array -> float
val norm2 : float array -> float
val wrms_norm : float array -> float array -> float
(** Weighted root-mean-square norm [sqrt(mean((v_i / w_i)^2))], the error
    norm used by ODEPACK-style controllers. *)
