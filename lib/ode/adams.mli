(** Adams–Bashforth–Moulton predictor–corrector methods (the non-stiff,
    multi-step family of paper §2.4: "an extrapolation of previously
    calculated points").

    Fixed step size, orders 1–4, PECE mode: one predictor evaluation and one
    corrector evaluation of the RHS per step.  Startup history is built with
    classical RK4. *)

val integrate :
  ?order:int ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  h:float ->
  Odesys.trajectory
(** @raise Invalid_argument if [order] is outside 1..4 or [h <= 0]. *)

val pece_error_estimate : float array -> float array -> float
(** Infinity-norm distance between predictor and corrector, the classic
    Milne-style local error proxy (exposed for the LSODA-style driver). *)
