let solve_implicit_stage_with (jplan : Jacobian.plan) (sys : Odesys.t) ~tol
    ~max_iter ~t_next ~beta_h ~rhs_const ~alpha0 ~y_guess =
  let n = sys.dim in
  (* A structurally/numerically singular Newton matrix can never
     converge, so it joins the Newton taxonomy instead of escaping as a
     raw linear-algebra exception (callers like LSODA answer
     [Newton_failure] with step reduction). *)
  let singular () =
    Om_guard.Om_error.(
      error (Newton_failure { time = t_next; iterations = 0 }))
  in
  (* Modified Newton: factor [alpha0*I - beta_h*J] at the predictor and
     reuse the factorisation for every iteration of this step.  With a
     declared band structure the factorisation runs in the band
     (ODEPACK's banded-Jacobian option); with a sparsity pattern the
     Jacobian is evaluated in compressed colored columns and factored
     by the sparse LU — bitwise the dense results (see {!Sparse}). *)
  let solve =
    match jplan with
    | Jacobian.Sparse_plan ctx -> (
        Jacobian.sparse_eval_into sys ctx t_next y_guess;
        Sparse.newton_assemble ctx.newton ~jac:ctx.sj ~alpha:alpha0
          ~beta:beta_h;
        match Sparse.lu_factor (Sparse.newton_matrix ctx.newton) with
        | lu -> Sparse.lu_solve lu
        | exception Linalg.Singular _ -> singular ())
    | Jacobian.Dense_plan -> (
        let j = Linalg.make n n 0. in
        Jacobian.eval_into sys t_next y_guess j;
        let m =
          Array.init n (fun i ->
              Array.init n (fun k ->
                  (if i = k then alpha0 else 0.) -. (beta_h *. j.(i).(k))))
        in
        match Linalg.lu_factor m with
        | lu -> Linalg.lu_solve lu
        | exception Linalg.Singular _ -> singular ())
    | Jacobian.Banded_plan (ml, mu) -> (
        let j = Linalg.make n n 0. in
        Jacobian.eval_into sys t_next y_guess j;
        let b = Banded.create ~n ~ml ~mu in
        for i = 0 to n - 1 do
          for k = max 0 (i - ml) to min (n - 1) (i + mu) do
            Banded.set b i k
              ((if i = k then alpha0 else 0.) -. (beta_h *. j.(i).(k)))
          done
        done;
        match Banded.lu_factor b with
        | lu -> Banded.lu_solve lu
        | exception Linalg.Singular _ -> singular ())
  in
  sys.counters.lu_factorisations <- sys.counters.lu_factorisations + 1;
  let y = Array.copy y_guess in
  let fy = Array.make n 0. in
  let rec iterate k =
    if k >= max_iter then
      Om_guard.Om_error.(
        error (Newton_failure { time = t_next; iterations = max_iter }));
    Odesys.rhs_into sys t_next y fy;
    let g =
      Array.init n (fun i ->
          (alpha0 *. y.(i)) -. (beta_h *. fy.(i)) -. rhs_const.(i))
    in
    let dy = solve g in
    sys.counters.newton_iters <- sys.counters.newton_iters + 1;
    for i = 0 to n - 1 do
      y.(i) <- y.(i) -. dy.(i)
    done;
    let scale =
      Array.init n (fun i -> 1. +. Float.abs y.(i))
    in
    if Linalg.wrms_norm dy scale > tol then iterate (k + 1)
  in
  iterate 0;
  y

let solve_implicit_stage ?banded ?jac_mode (sys : Odesys.t) ~tol ~max_iter
    ~t_next ~beta_h ~rhs_const ~alpha0 ~y_guess =
  solve_implicit_stage_with
    (Jacobian.plan ?jac_mode ?banded sys)
    sys ~tol ~max_iter ~t_next ~beta_h ~rhs_const ~alpha0 ~y_guess

(* alpha0 and history coefficients of fixed-step BDF k:
   alpha0 * y_{n+1} = sum_i coeff_i * y_{n-i} + h * f_{n+1}. *)
let formula = function
  | 1 -> (1., [| 1. |])
  | 2 -> (1.5, [| 2.; -0.5 |])
  | 3 -> (11. /. 6., [| 3.; -1.5; 1. /. 3. |])
  | k -> invalid_arg (Printf.sprintf "Bdf: unsupported order %d" k)

let integrate ?(order = 2) ?(newton_tol = 1e-10) ?(max_newton = 25) ?banded
    ?jac_mode ?jac_batch (sys : Odesys.t) ~t0 ~y0 ~tend ~h =
  if order < 1 || order > 3 then invalid_arg "Bdf.integrate: order in 1..3";
  if h <= 0. then invalid_arg "Bdf.integrate: nonpositive step";
  (* One plan (and one sparse workspace) for the whole integration. *)
  let jplan = Jacobian.plan ?jac_mode ?banded ?batch:jac_batch sys in
  let n = sys.dim in
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  (* History of accepted states, most recent first. *)
  let hist = ref [ Array.copy y0 ] in
  let t = ref t0 in
  while !t < tend -. 1e-12 do
    let h' = Float.min h (tend -. !t) in
    (* Ramp the order up as history becomes available. *)
    let k = min order (List.length !hist) in
    let alpha0, coeffs = formula k in
    let harr = Array.of_list !hist in
    let rhs_const =
      Array.init n (fun i ->
          let acc = ref 0. in
          for j = 0 to k - 1 do
            acc := !acc +. (coeffs.(j) *. harr.(j).(i))
          done;
          !acc)
    in
    let t_next = !t +. h' in
    let y =
      solve_implicit_stage_with jplan sys ~tol:newton_tol
        ~max_iter:max_newton ~t_next ~beta_h:h' ~rhs_const ~alpha0
        ~y_guess:harr.(0)
    in
    t := t_next;
    sys.counters.steps <- sys.counters.steps + 1;
    ts := !t :: !ts;
    ys := Array.copy y :: !ys;
    hist :=
      y
      :: (if List.length !hist >= order then
            List.filteri (fun i _ -> i < order - 1) !hist
          else !hist)
  done;
  {
    Odesys.ts = Array.of_list (List.rev !ts);
    states = Array.of_list (List.rev !ys);
  }
