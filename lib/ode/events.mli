(** Event detection (root finding) during integration.

    ODEPACK — the solver collection the paper builds on (§3.2.1) — pairs
    LSODA with LSODAR, "the rootfinding variant": integration stops where
    user-supplied event functions [g_i(t, y)] cross zero.  For the bearing
    models this localises contact onset/loss, exactly the conditional
    switches that drive the semi-dynamic scheduler.

    Detection: after every accepted step the event functions are compared
    against their values at the previous step; a sign change is refined by
    bisection on linearly interpolated states down to [t_tol]. *)

type event = {
  label : string;
  g : float -> float array -> float;  (** the event function g(t, y) *)
}

type occurrence = {
  event_index : int;
  event_label : string;
  time : float;
  state : float array;
  rising : bool;  (** g went from negative to positive *)
}

type result = {
  trajectory : Odesys.trajectory;
  occurrences : occurrence list;  (** in chronological order *)
  lsoda : Lsoda.result;
}

val integrate :
  ?atol:float ->
  ?rtol:float ->
  ?t_tol:float ->
  ?stop_at_first:bool ->
  events:event list ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  result
(** Integrate with the LSODA-style driver, recording every zero crossing
    of every event function.  [t_tol] (default [1e-9] of the span) is the
    bisection resolution.  With [stop_at_first] the trajectory is cut at
    the first occurrence. *)

val crossings : result -> string -> occurrence list
(** Occurrences of the event with the given label. *)
