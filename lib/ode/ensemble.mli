(** Lockstep ensemble integration.

    An ensemble advances a batch of member trajectories of the {e same}
    ODE system — differing in initial state and promoted parameters —
    with one solver loop over structure-of-arrays state
    ([y.(state).(lane)], mirroring {!Om_expr.Vm_batch}).  The
    right-hand side is evaluated for a whole lane range per call, so a
    batched backend amortises instruction decode across the batch.

    {b Bitwise contracts.}
    {ul
    {- {!rk4} advances every member with the same step sequence; each
       member's trajectory is Int64-bitwise identical to a scalar
       {!Rk.integrate_fixed} [Rk.rk4] run of the per-lane RHS.}
    {- {!rkf45} at width 1 reduces exactly to the scalar {!Rk.rkf45}
       controller (same stages, WRMS error weights, safety factor and
       clamps): batch-of-1 is bitwise identical to the scalar adaptive
       solver.}
    {- When {!rkf45} splits a group, the continuing (passing) members'
       step-size sequence depends only on their own error estimates, so
       a stiff member never perturbs the others' trajectories — they
       stay bitwise identical to a run without the stiff member.}}

    {b Split/merge.}  An adaptive attempt whose error estimates diverge
    partitions the lane range stably into passing and failing members;
    the failing subgroup is sub-stepped recursively to the rendezvous
    point [t + h'] and merged back, so groups re-merge at every macro
    step and fragmentation cannot accumulate. *)

type brhs =
  times:float array ->
  y:float array array ->
  ydot:float array array ->
  lo:int ->
  hi:int ->
  unit
(** Batched right-hand side over lanes [lo..hi-1] of SoA columns:
    read [y.(i).(j)] and the per-lane time [times.(j)], write
    [ydot.(i).(j)].  Lanes outside the range must be left untouched. *)

type t
(** Mutable ensemble state: SoA batch state, preallocated stage
    workspaces, per-member counters.  Integration runs mutate the state
    in place and continue from wherever the previous run stopped. *)

type report = {
  final : float array array;
      (** Member-major final states: [final.(m).(i)] is state [i] of
          member [m] (lane permutations from group splits are undone). *)
  steps : int array;  (** accepted steps, per member *)
  rejected : int array;  (** rejected attempts, per member *)
  rhs_evals : int array;  (** per-member RHS stage evaluations *)
  rhs_batches : int;  (** batched RHS calls issued (all groups) *)
  splits : int;  (** adaptive group splits *)
  merges : int;  (** subgroup rendezvous merges ([= splits]) *)
  max_group_depth : int;  (** deepest split recursion reached *)
  trajectories : Odesys.trajectory array option;
      (** per-member trajectories when recording was requested *)
}

val create : dim:int -> f:brhs -> float array array -> t
(** [create ~dim ~f y0] builds an ensemble of [Array.length y0] members
    with initial states [y0.(m)] (each of length [dim]).
    @raise Invalid_argument on an empty batch or a length mismatch. *)

val width : t -> int
val dim : t -> int

val rk4 : ?record:bool -> t -> t0:float -> tend:float -> h:float -> report
(** Fixed-step lockstep RK4 over [t0, tend] with step [h] (final step
    shortened to land on [tend]).  Zero heap allocation per step when
    [record] is [false] (the default). *)

val rkf45 :
  ?record:bool ->
  ?atol:float ->
  ?rtol:float ->
  ?h0:float ->
  ?max_steps:int ->
  t ->
  t0:float ->
  tend:float ->
  report
(** Adaptive lockstep RKF45 with group split/merge.  Defaults match the
    scalar solver: [atol = 1e-8], [rtol = 1e-6], [h0 = span /. 100.],
    [max_steps = 1_000_000] (counting attempted steps across all
    groups).
    @raise Om_guard.Om_error.Error ([Step_failure]) when the attempt
    budget is exhausted. *)
