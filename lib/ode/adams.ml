(* Adams–Bashforth predictor coefficients, order k uses f_n .. f_{n-k+1}. *)
let ab_coeffs = function
  | 1 -> [| 1. |]
  | 2 -> [| 1.5; -0.5 |]
  | 3 -> [| 23. /. 12.; -16. /. 12.; 5. /. 12. |]
  | 4 -> [| 55. /. 24.; -59. /. 24.; 37. /. 24.; -9. /. 24. |]
  | k -> invalid_arg (Printf.sprintf "Adams: unsupported order %d" k)

(* Adams–Moulton corrector coefficients, order k uses f_{n+1} .. f_{n-k+2}. *)
let am_coeffs = function
  | 1 -> [| 1. |]
  | 2 -> [| 0.5; 0.5 |]
  | 3 -> [| 5. /. 12.; 8. /. 12.; -1. /. 12. |]
  | 4 -> [| 9. /. 24.; 19. /. 24.; -5. /. 24.; 1. /. 24. |]
  | k -> invalid_arg (Printf.sprintf "Adams: unsupported order %d" k)

let pece_error_estimate pred corr =
  let n = Array.length pred in
  let m = ref 0. in
  for i = 0 to n - 1 do
    m := Float.max !m (Float.abs (corr.(i) -. pred.(i)))
  done;
  !m

let integrate ?(order = 4) (sys : Odesys.t) ~t0 ~y0 ~tend ~h =
  if order < 1 || order > 4 then invalid_arg "Adams.integrate: order in 1..4";
  if h <= 0. then invalid_arg "Adams.integrate: nonpositive step";
  let n = sys.dim in
  let ab = ab_coeffs order and am = am_coeffs order in
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  (* History of derivative evaluations, most recent first. *)
  let fs = ref [ Odesys.rhs sys t0 y0 ] in
  let t = ref t0 and y = ref (Array.copy y0) in
  (* Build start-up history with RK4 so the first multistep step has
     [order] derivative values available. *)
  let rec startup k =
    if k < order - 1 && !t < tend -. 1e-12 then begin
      let h' = Float.min h (tend -. !t) in
      y := Rk.step Rk.rk4 sys !t !y h';
      t := !t +. h';
      sys.counters.steps <- sys.counters.steps + 1;
      ts := !t :: !ts;
      ys := Array.copy !y :: !ys;
      fs := Odesys.rhs sys !t !y :: !fs;
      startup (k + 1)
    end
  in
  startup 0;
  while !t < tend -. 1e-12 do
    let h' = Float.min h (tend -. !t) in
    let hist = Array.of_list !fs in
    (* Predict with Adams–Bashforth. *)
    let pred =
      Array.init n (fun i ->
          let acc = ref !y.(i) in
          for j = 0 to order - 1 do
            acc := !acc +. (h' *. ab.(j) *. hist.(j).(i))
          done;
          !acc)
    in
    (* Evaluate, correct with Adams–Moulton, re-evaluate (PECE). *)
    let fpred = Odesys.rhs sys (!t +. h') pred in
    let corr =
      Array.init n (fun i ->
          let acc = ref (!y.(i) +. (h' *. am.(0) *. fpred.(i))) in
          for j = 1 to order - 1 do
            acc := !acc +. (h' *. am.(j) *. hist.(j - 1).(i))
          done;
          !acc)
    in
    let fcorr = Odesys.rhs sys (!t +. h') corr in
    t := !t +. h';
    y := corr;
    sys.counters.steps <- sys.counters.steps + 1;
    ts := !t :: !ts;
    ys := Array.copy corr :: !ys;
    fs := fcorr :: (if List.length !fs >= order then
                      List.filteri (fun i _ -> i < order - 1) !fs
                    else !fs)
  done;
  {
    Odesys.ts = Array.of_list (List.rev !ts);
    states = Array.of_list (List.rev !ys);
  }
