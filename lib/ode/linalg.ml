type mat = float array array

let make rows cols x = Array.init rows (fun _ -> Array.make cols x)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let copy a = Array.map Array.copy a

let dims a =
  let rows = Array.length a in
  (rows, if rows = 0 then 0 else Array.length a.(0))

let mat_vec a x =
  Array.map
    (fun row ->
      let acc = ref 0. in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let mat_mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Linalg.mat_mul: dimension mismatch";
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let acc = ref 0. in
          for k = 0 to ca - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let transpose a =
  let r, c = dims a in
  Array.init c (fun j -> Array.init r (fun i -> a.(i).(j)))

let scale s a = Array.map (Array.map (fun x -> s *. x)) a

let zip_with f a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ra <> rb || ca <> cb then invalid_arg "Linalg: dimension mismatch";
  Array.init ra (fun i -> Array.init ca (fun j -> f a.(i).(j) b.(i).(j)))

let add = zip_with ( +. )
let sub = zip_with ( -. )

type lu = { a : mat; piv : int array; sign : float }

exception Singular of int

let lu_factor m =
  let n = Array.length m in
  if n > 0 && Array.length m.(0) <> n then
    invalid_arg "Linalg.lu_factor: not square";
  let a = copy m in
  let piv = Array.init n Fun.id in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest magnitude entry of column k
       into the pivot position. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!best).(k) then best := i
    done;
    if !best <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!best);
      a.(!best) <- tmp;
      let tp = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- tp;
      sign := Float.neg !sign
    end;
    let pivot = a.(k).(k) in
    if pivot = 0. then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = a.(i).(k) /. pivot in
      a.(i).(k) <- f;
      for j = k + 1 to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
      done
    done
  done;
  { a; piv; sign = !sign }

let lu_solve { a; piv; _ } b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Linalg.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (a.(i).(j) *. x.(j))
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. a.(i).(i)
  done;
  x

let lu_det { a; sign; _ } =
  let n = Array.length a in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. a.(i).(i)
  done;
  !d

let solve m b = lu_solve (lu_factor m) b

let inverse m =
  let n = Array.length m in
  let f = lu_factor m in
  let cols =
    Array.init n (fun j ->
        lu_solve f (Array.init n (fun i -> if i = j then 1. else 0.)))
  in
  Array.init n (fun i -> Array.init n (fun j -> cols.(j).(i)))

let norm_inf v = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. v

let norm2 v =
  Float.sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v)

let wrms_norm v w =
  let n = Array.length v in
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let r = v.(i) /. w.(i) in
      acc := !acc +. (r *. r)
    done;
    Float.sqrt (!acc /. float_of_int n)
  end
