type t = {
  n : int;
  ml : int;
  mu : int;
  store : float array array;
}

let create ~n ~ml ~mu =
  if n < 1 || ml < 0 || mu < 0 then invalid_arg "Banded.create";
  { n; ml; mu; store = Array.make_matrix (ml + mu + 1) n 0. }

let in_band b i j = j - i <= b.mu && i - j <= b.ml

let get b i j =
  if i < 0 || j < 0 || i >= b.n || j >= b.n then
    invalid_arg "Banded.get: out of range";
  if in_band b i j then b.store.(i - j + b.mu).(j) else 0.

let set b i j v =
  if (not (in_band b i j)) || i < 0 || j < 0 || i >= b.n || j >= b.n then
    invalid_arg "Banded.set: outside the band";
  b.store.(i - j + b.mu).(j) <- v

let of_dense ~ml ~mu a =
  let n = Array.length a in
  let b = create ~n ~ml ~mu in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if in_band b i j then (if v <> 0. then set b i j v)
          else if v <> 0. then
            invalid_arg "Banded.of_dense: entry outside the band")
        row)
    a;
  b

let to_dense b =
  Array.init b.n (fun i -> Array.init b.n (fun j -> get b i j))

let mat_vec b x =
  Array.init b.n (fun i ->
      let lo = max 0 (i - b.ml) and hi = min (b.n - 1) (i + b.mu) in
      let acc = ref 0. in
      for j = lo to hi do
        acc := !acc +. (get b i j *. x.(j))
      done;
      !acc)

(* Factorisation in an expanded band: elimination with row pivoting can
   push fill-in up to ml extra upper diagonals. *)
type lu = {
  fn : int;
  fml : int;
  fmu : int;  (** expanded upper bandwidth, mu + ml *)
  fstore : float array array;
  piv : int array;
}

let lu_factor b =
  let n = b.n in
  let fmu = b.mu + b.ml in
  let width = b.ml + fmu + 1 in
  let fs = Array.make_matrix width n 0. in
  (* Row index in the expanded store for matrix entry (i, j). *)
  let idx i j = i - j + fmu in
  let fget i j =
    if j - i <= fmu && i - j <= b.ml && j >= 0 && j < n && i >= 0 && i < n
    then fs.(idx i j).(j)
    else 0.
  in
  let fset i j v = fs.(idx i j).(j) <- v in
  for j = 0 to n - 1 do
    for i = max 0 (j - b.mu) to min (n - 1) (j + b.ml) do
      fset i j (get b i j)
    done
  done;
  let piv = Array.init n Fun.id in
  for k = 0 to n - 1 do
    (* Pivot search within the lower band of column k. *)
    let last = min (n - 1) (k + b.ml) in
    let best = ref k in
    for i = k + 1 to last do
      if Float.abs (fget i k) > Float.abs (fget !best k) then best := i
    done;
    if Float.abs (fget !best k) = 0. then raise (Linalg.Singular k);
    if !best <> k then begin
      (* Swap rows k and best within their shared band columns. *)
      let hi = min (n - 1) (k + fmu) in
      for j = k to hi do
        let a = fget k j and b' = fget !best j in
        fset k j b';
        fset !best j a
      done;
      let tp = piv.(k) in
      piv.(k) <- piv.(!best);
      piv.(!best) <- tp
    end;
    let pivot = fget k k in
    for i = k + 1 to last do
      let f = fget i k /. pivot in
      fset i k f;
      let hi = min (n - 1) (k + fmu) in
      for j = k + 1 to hi do
        fset i j (fget i j -. (f *. fget k j))
      done
    done
  done;
  { fn = n; fml = b.ml; fmu; fstore = fs; piv }

let lu_solve lu b =
  let n = lu.fn in
  if Array.length b <> n then invalid_arg "Banded.lu_solve: dimension";
  let fget i j =
    if j - i <= lu.fmu && i - j <= lu.fml && j >= 0 && j < n then
      lu.fstore.(i - j + lu.fmu).(j)
    else 0.
  in
  (* The permutation was built by row swaps during elimination; replay it
     through the recorded pivot order. *)
  let x = Array.make n 0. in
  let src = Array.make n 0 in
  Array.iteri (fun i p -> src.(i) <- p) lu.piv;
  for i = 0 to n - 1 do
    x.(i) <- b.(src.(i))
  done;
  (* Forward substitution (unit lower, multipliers stored in band). *)
  for i = 0 to n - 1 do
    let lo = max 0 (i - lu.fml) in
    for j = lo to i - 1 do
      x.(i) <- x.(i) -. (fget i j *. x.(j))
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let hi = min (n - 1) (i + lu.fmu) in
    for j = i + 1 to hi do
      x.(i) <- x.(i) -. (fget i j *. x.(j))
    done;
    x.(i) <- x.(i) /. fget i i
  done;
  x

let bandwidth_of_jacobian entries =
  List.fold_left
    (fun (ml, mu) (r, c, _) -> (max ml (r - c), max mu (c - r)))
    (0, 0) entries
