(** A second-order Rosenbrock (ROW) method for stiff systems.

    Rosenbrock methods make the Newton iteration of implicit solvers
    unnecessary: each step performs a fixed number of linear solves with
    the matrix [I - gamma h J].  They were the main alternative to BDF for
    stiff problems in the early-1990s literature the paper draws on, and
    they give this library a stiff one-step method to complement the
    multistep BDF family.

    This is the L-stable two-stage ROS2 scheme of Verwer et al. with
    [gamma = 1 + 1/sqrt 2]; both stages reuse one LU factorisation, and a
    declared band structure routes the factorisation through {!Banded}. *)

val step :
  ?banded:int * int ->
  Odesys.t ->
  float ->
  float array ->
  float ->
  float array
(** [step sys t y h] advances one step of size [h]. *)

val integrate :
  ?banded:int * int ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  h:float ->
  Odesys.trajectory
(** Fixed-step integration (the final step is shortened to land on
    [tend]).  @raise Invalid_argument on a nonpositive step.
    @raise Linalg.Singular if [I - gamma h J] degenerates. *)
