(** A second-order Rosenbrock (ROW) method for stiff systems.

    Rosenbrock methods make the Newton iteration of implicit solvers
    unnecessary: each step performs a fixed number of linear solves with
    the matrix [I - gamma h J].  They were the main alternative to BDF for
    stiff problems in the early-1990s literature the paper draws on, and
    they give this library a stiff one-step method to complement the
    multistep BDF family.

    This is the L-stable two-stage ROS2 scheme of Verwer et al. with
    [gamma = 1 + 1/sqrt 2]; both stages reuse one LU factorisation, and a
    declared band structure routes the factorisation through {!Banded}. *)

val step :
  ?banded:int * int ->
  ?jac_mode:Odesys.jac_mode ->
  Odesys.t ->
  float ->
  float array ->
  float ->
  float array
(** [step sys t y h] advances one step of size [h].  Resolves the
    Jacobian plan per call; see {!step_with} for repeated stepping. *)

val step_with :
  Jacobian.plan -> Odesys.t -> float -> float array -> float -> float array
(** {!step} against a pre-resolved {!Jacobian.plan}, so the sparse
    workspace is built once per integration rather than once per step. *)

val integrate :
  ?banded:int * int ->
  ?jac_mode:Odesys.jac_mode ->
  ?jac_batch:Jacobian.batch_rhs ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  h:float ->
  Odesys.trajectory
(** Fixed-step integration (the final step is shortened to land on
    [tend]).  [jac_mode] (default [Auto]) selects the dense/banded/sparse
    path for [I - gamma h J]; the sparse path is bitwise-identical to the
    dense one.  @raise Invalid_argument on a nonpositive step.
    @raise Linalg.Singular if [I - gamma h J] degenerates. *)
