(* ROS2 (Verwer/Hundsdorfer): with gamma = 1 + 1/sqrt 2,
     (I - gamma h J) k1 = f(t, y)
     (I - gamma h J) k2 = f(t + h, y + h k1) - 2 k1
     y' = y + (3/2) h k1 + (1/2) h k2
   L-stable and second order for autonomous systems (our systems carry
   time as an ordinary input, and the method's order is preserved for
   the mildly non-autonomous RHS the models produce). *)

let gamma = 1. +. (1. /. Float.sqrt 2.)

let make_solver_with (jplan : Jacobian.plan) (sys : Odesys.t) t y h =
  let n = sys.dim in
  sys.counters.lu_factorisations <- sys.counters.lu_factorisations + 1;
  match jplan with
  | Jacobian.Sparse_plan ctx ->
      Jacobian.sparse_eval_into sys ctx t y;
      (* The ROS2 matrix is the Newton shape with alpha = 1 and
         beta = gamma*h: the dense path computes [1 - (gamma*h)*J_ii]
         with [gamma *. h] rounded first, so pass the product. *)
      Sparse.newton_assemble ctx.newton ~jac:ctx.sj ~alpha:1.
        ~beta:(gamma *. h);
      Sparse.lu_solve (Sparse.lu_factor (Sparse.newton_matrix ctx.newton))
  | Jacobian.Dense_plan ->
      let j = Linalg.make n n 0. in
      Jacobian.eval_into sys t y j;
      let m =
        Array.init n (fun i ->
            Array.init n (fun k ->
                (if i = k then 1. else 0.) -. (gamma *. h *. j.(i).(k))))
      in
      Linalg.lu_solve (Linalg.lu_factor m)
  | Jacobian.Banded_plan (ml, mu) ->
      let j = Linalg.make n n 0. in
      Jacobian.eval_into sys t y j;
      let b = Banded.create ~n ~ml ~mu in
      for i = 0 to n - 1 do
        for k = max 0 (i - ml) to min (n - 1) (i + mu) do
          Banded.set b i k
            ((if i = k then 1. else 0.) -. (gamma *. h *. j.(i).(k)))
        done
      done;
      Banded.lu_solve (Banded.lu_factor b)

let step_with jplan (sys : Odesys.t) t y h =
  let n = sys.dim in
  let solve = make_solver_with jplan sys t y h in
  let f1 = Odesys.rhs sys t y in
  let k1 = solve f1 in
  let y2 = Array.init n (fun i -> y.(i) +. (h *. k1.(i))) in
  let f2 = Odesys.rhs sys (t +. h) y2 in
  let rhs2 = Array.init n (fun i -> f2.(i) -. (2. *. k1.(i))) in
  let k2 = solve rhs2 in
  Array.init n (fun i ->
      y.(i) +. (h *. ((1.5 *. k1.(i)) +. (0.5 *. k2.(i)))))

let step ?banded ?jac_mode (sys : Odesys.t) t y h =
  step_with (Jacobian.plan ?jac_mode ?banded sys) sys t y h

let integrate ?banded ?jac_mode ?jac_batch (sys : Odesys.t) ~t0 ~y0 ~tend ~h
    =
  if h <= 0. then invalid_arg "Rosenbrock.integrate: nonpositive step";
  (* One plan (and one sparse workspace) for the whole integration. *)
  let jplan = Jacobian.plan ?jac_mode ?banded ?batch:jac_batch sys in
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  let t = ref t0 and y = ref (Array.copy y0) in
  while !t < tend -. 1e-12 do
    let h' = Float.min h (tend -. !t) in
    y := step_with jplan sys !t !y h';
    t := !t +. h';
    sys.counters.steps <- sys.counters.steps + 1;
    ts := !t :: !ts;
    ys := Array.copy !y :: !ys
  done;
  {
    Odesys.ts = Array.of_list (List.rev !ts);
    states = Array.of_list (List.rev !ys);
  }
