(** Jacobian matrices df/dy of an ODE system. *)

val numeric :
  ?eps:float -> Odesys.t -> float -> float array -> Linalg.mat
(** Forward-difference approximation; [dim + 1] RHS evaluations, the
    "usually very expensive" internal path of LSODA the paper mentions. *)

val analytic : Odesys.t -> float -> float array -> Linalg.mat
(** Use the system's analytic Jacobian when present, else fall back to
    {!numeric}. *)

val eval_into :
  ?eps:float -> Odesys.t -> float -> float array -> Linalg.mat -> unit
(** In-place version of {!analytic}, used by the BDF inner loop. *)
