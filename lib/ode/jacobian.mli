(** Jacobian matrices df/dy of an ODE system. *)

val numeric :
  ?eps:float -> Odesys.t -> float -> float array -> Linalg.mat
(** Forward-difference approximation; [dim + 1] RHS evaluations, the
    "usually very expensive" internal path of LSODA the paper mentions.
    Bumps [counters.jac_calls]. *)

val numeric_into :
  ?eps:float -> Odesys.t -> float -> float array -> Linalg.mat -> unit
(** In-place {!numeric}; bumps [counters.jac_calls] exactly once like
    every other evaluation entry point. *)

val analytic : Odesys.t -> float -> float array -> Linalg.mat
(** Use the system's analytic Jacobian when present, else fall back to
    {!numeric}. *)

val eval_into :
  ?eps:float -> Odesys.t -> float -> float array -> Linalg.mat -> unit
(** In-place version of {!analytic}, used by the BDF inner loop. *)

(** {1 Sparse evaluation and jac-mode resolution} *)

type batch_rhs = float -> float array array -> float array array -> unit
(** [batch t ys outs] evaluates the RHS at every point of [ys], writing
    into the matching rows of [outs].  The points are independent, so an
    implementation may run them in parallel (Par_jac in the parallel
    library); results are bitwise those of sequential evaluation under
    any scheduling because each point runs the same code on the same
    inputs. *)

type sparse_ctx = {
  spat : Sparse.pattern;
  coloring : Sparse.coloring;
  sj : Sparse.t;  (** current Jacobian values *)
  fd : Sparse.fd_ws;
  f0 : float array;
  newton : Sparse.newton;
  batch : batch_rhs option;
}
(** Per-integration workspace for the sparse Newton path: pattern,
    coloring, value storage, colored-fd buffers and the assembled
    [alpha*I - beta*J] matrix.  Built once by {!plan}. *)

val sparse_ctx : ?batch:batch_rhs -> Odesys.t -> sparse_ctx option
(** [None] when the system declares no sparsity pattern. *)

(** Resolved Newton-matrix strategy for a whole integration. *)
type plan =
  | Dense_plan
  | Banded_plan of int * int
  | Sparse_plan of sparse_ctx

val plan :
  ?jac_mode:Odesys.jac_mode ->
  ?banded:int * int ->
  ?batch:batch_rhs ->
  Odesys.t ->
  plan
(** Resolve a {!Odesys.jac_mode} (default [Auto]) against the system.
    An explicit [banded] argument (the pre-existing solver option) wins
    for compatibility.  [Auto] selects the sparse path when a pattern
    is declared, [dim >= 16] and the density is at most [0.25] —
    below that size the dense factorisation is at least as fast and
    the workspace is not worth building.  [Sparse] without a declared
    pattern falls back to the dense path (the always-available
    fallback). *)

val sparse_eval_into :
  ?eps:float -> Odesys.t -> sparse_ctx -> float -> float array -> unit
(** Evaluate the Jacobian into [ctx.sj]: through the system's sparse
    analytic writer when present, else by colored forward differences
    (one RHS evaluation per color plus the base point — bitwise the
    dense forward differences on every structural entry).  Bumps
    [counters.jac_calls]; the fd path bumps [counters.rhs_calls] by
    [colors + 1]. *)

val plan_stats : plan -> string * (int * int) option
(** Human-readable mode name, plus [(nnz, colors)] for the sparse
    plan — surfaced in the runtime report and [omc --jac-mode]. *)

val mode_stats :
  ?jac_mode:Odesys.jac_mode ->
  ?banded:int * int ->
  Odesys.t ->
  string * (int * int) option
(** {!plan_stats} of the plan {!plan} would resolve, without building
    the sparse workspace — for reporting paths that never factor a
    matrix themselves. *)
