(** LSODA-style automatic stiff/non-stiff switching solver.

    The paper drives its generated RHS code with LSODA from ODEPACK
    (Hindmarsh & Petzold), which "automatically selects between methods for
    stiff and nonstiff systems".  This module reproduces that structure with
    a variable-step order-2 Adams–Bashforth–Moulton pair for the non-stiff
    regime and a variable-step BDF2 with modified Newton for the stiff
    regime, switching on a step-size/stability heuristic in the spirit of
    Petzold (SIAM J. Sci. Stat. Comput. 4(1), 1983): when the
    accuracy-chosen step keeps running into the explicit method's stability
    bound (h·L ≈ 1 with L a local Lipschitz estimate), the stiff method
    takes over; when the stiff method's steps are comfortably inside the
    explicit stability region again, control returns to Adams. *)

type mode = Adams_mode | Bdf_mode

type result = {
  trajectory : Odesys.trajectory;
  switches : (float * mode) list;
      (** Times at which the method changed, with the new method. *)
  final_mode : mode;
}

val integrate :
  ?atol:float ->
  ?rtol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?stiffness_window:int ->
  ?start_mode:mode ->
  ?max_retries:int ->
  ?jac_mode:Odesys.jac_mode ->
  ?jac_batch:Jacobian.batch_rhs ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  result
(** Guarded runtime faults ({!Om_guard.Om_error.Error}) raised by the RHS
    during an attempted step are answered with backoff — same-size retry
    first (bitwise-identical recovery from transient faults), then step
    halving — bounded by [max_retries] (default 8) consecutive attempts.
    Newton non-convergence inside a BDF attempt keeps its classic
    treatment (reject, quarter the step).
    [jac_mode] (default [Auto], see {!Odesys.jac_mode}) selects the
    Newton-matrix path for the stiff regime — the sparse path is
    bitwise-identical to the dense one — and [jac_batch] supplies an
    optional parallel evaluator for the colored finite-difference
    column groups.
    @raise Om_guard.Om_error.Error ([Step_failure]) when the step count
    budget (default 2_000_000), the retry budget, or the minimum step
    size is exhausted. *)

val pp_mode : mode Fmt.t
