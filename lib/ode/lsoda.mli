(** LSODA-style automatic stiff/non-stiff switching solver.

    The paper drives its generated RHS code with LSODA from ODEPACK
    (Hindmarsh & Petzold), which "automatically selects between methods for
    stiff and nonstiff systems".  This module reproduces that structure with
    a variable-step order-2 Adams–Bashforth–Moulton pair for the non-stiff
    regime and a variable-step BDF2 with modified Newton for the stiff
    regime, switching on a step-size/stability heuristic in the spirit of
    Petzold (SIAM J. Sci. Stat. Comput. 4(1), 1983): when the
    accuracy-chosen step keeps running into the explicit method's stability
    bound (h·L ≈ 1 with L a local Lipschitz estimate), the stiff method
    takes over; when the stiff method's steps are comfortably inside the
    explicit stability region again, control returns to Adams. *)

type mode = Adams_mode | Bdf_mode

type result = {
  trajectory : Odesys.trajectory;
  switches : (float * mode) list;
      (** Times at which the method changed, with the new method. *)
  final_mode : mode;
}

val integrate :
  ?atol:float ->
  ?rtol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?stiffness_window:int ->
  ?start_mode:mode ->
  Odesys.t ->
  t0:float ->
  y0:float array ->
  tend:float ->
  result
(** @raise Failure when the step count budget (default 2_000_000) is
    exhausted or the step size underflows. *)

val pp_mode : mode Fmt.t
