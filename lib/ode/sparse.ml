(* Sparse Jacobian support for the stiff Newton path.

   Three pieces, all built around one CSR pattern:

   - a greedy distance-2 column coloring, so a finite-difference Jacobian
     needs one RHS evaluation per *color* instead of per column
     (Curtis–Powell–Reid compression; the abstract-elementary-algebra
     sparse-AD route of Peleš & Klus, arXiv 1505.00838);
   - a compressed-column assembly that scatters either symbolic entries
     or colored differences into the CSR value array;
   - a left-looking (Gilbert–Peierls) sparse LU with partial pivoting
     engineered to reproduce the dense {!Linalg.lu_factor} arithmetic
     operation-for-operation, so switching a solver between the dense
     and sparse paths leaves trajectories bitwise identical.

   The bitwise claim rests on three facts.  (1) Entries outside the
   pattern are exactly [+0.] in the dense path (structural zeros of the
   RHS reads), so every dense operation the sparse code skips is a
   bitwise no-op.  (2) Updates inside one elimination column are applied
   in ascending pivot order — the same order the dense right-looking
   loop uses — and the triangular solves walk rows in the dense loop
   order.  (3) Pivoting tracks the dense row-swap history through a
   position permutation, so the pivot search sees candidates with the
   dense tie-breaking rule (strictly-greater magnitude wins, first
   position keeps ties). *)

type pattern = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_ind : int array;
}

let nnz p = p.row_ptr.(p.rows)

let density p =
  if p.rows = 0 || p.cols = 0 then 0.
  else float_of_int (nnz p) /. (float_of_int p.rows *. float_of_int p.cols)

let pattern_of_entries ~rows ~cols entries =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.pattern_of_entries";
  List.iter
    (fun (r, c) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.pattern_of_entries: (%d,%d) out of %dx%d" r c
             rows cols))
    entries;
  let count = Array.make rows 0 in
  List.iter (fun (r, _) -> count.(r) <- count.(r) + 1) entries;
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + count.(i)
  done;
  let fill = Array.copy row_ptr in
  let raw = Array.make (List.length entries) 0 in
  List.iter
    (fun (r, c) ->
      raw.(fill.(r)) <- c;
      fill.(r) <- fill.(r) + 1)
    entries;
  (* Sort and deduplicate each row. *)
  let dedup_ci = Array.make (Array.length raw) 0 in
  let dedup_ptr = Array.make (rows + 1) 0 in
  let k = ref 0 in
  for i = 0 to rows - 1 do
    let lo = row_ptr.(i) and hi = row_ptr.(i + 1) in
    let seg = Array.sub raw lo (hi - lo) in
    Array.sort compare seg;
    Array.iteri
      (fun s c ->
        if s = 0 || c <> seg.(s - 1) then begin
          dedup_ci.(!k) <- c;
          incr k
        end)
      seg;
    dedup_ptr.(i + 1) <- !k
  done;
  { rows; cols; row_ptr = dedup_ptr; col_ind = Array.sub dedup_ci 0 !k }

let pattern_of_dense ?(tol = 0.) (m : Linalg.mat) =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  let entries = ref [] in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      if Float.abs m.(i).(j) > tol then entries := (i, j) :: !entries
    done
  done;
  pattern_of_entries ~rows ~cols !entries

(* CSR slot of (i, j), or -1: binary search inside row i. *)
let index p i j =
  let lo = ref p.row_ptr.(i) and hi = ref (p.row_ptr.(i + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = p.col_ind.(mid) in
    if c = j then found := mid else if c < j then lo := mid + 1 else hi := mid - 1
  done;
  !found

let mem p i j = index p i j >= 0

type t = { pat : pattern; v : float array }

let create pat = { pat; v = Array.make (nnz pat) 0. }

let of_dense ?tol (m : Linalg.mat) =
  let pat = pattern_of_dense ?tol m in
  let a = create pat in
  for i = 0 to pat.rows - 1 do
    for k = pat.row_ptr.(i) to pat.row_ptr.(i + 1) - 1 do
      a.v.(k) <- m.(i).(pat.col_ind.(k))
    done
  done;
  a

let to_dense a =
  let m = Linalg.make a.pat.rows a.pat.cols 0. in
  for i = 0 to a.pat.rows - 1 do
    for k = a.pat.row_ptr.(i) to a.pat.row_ptr.(i + 1) - 1 do
      m.(i).(a.pat.col_ind.(k)) <- a.v.(k)
    done
  done;
  m

let get a i j =
  let k = index a.pat i j in
  if k < 0 then 0. else a.v.(k)

let mat_vec a x =
  let y = Array.make a.pat.rows 0. in
  for i = 0 to a.pat.rows - 1 do
    let acc = ref 0. in
    for k = a.pat.row_ptr.(i) to a.pat.row_ptr.(i + 1) - 1 do
      acc := !acc +. (a.v.(k) *. x.(a.pat.col_ind.(k)))
    done;
    y.(i) <- !acc
  done;
  y

(* Transpose structure only: for each column, the rows containing it. *)
let transpose_pattern p =
  let count = Array.make p.cols 0 in
  Array.iter (fun c -> count.(c) <- count.(c) + 1) p.col_ind;
  let col_ptr = Array.make (p.cols + 1) 0 in
  for j = 0 to p.cols - 1 do
    col_ptr.(j + 1) <- col_ptr.(j) + count.(j)
  done;
  let fill = Array.copy col_ptr in
  let row_ind = Array.make (nnz p) 0 in
  for i = 0 to p.rows - 1 do
    for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
      let j = p.col_ind.(k) in
      row_ind.(fill.(j)) <- i;
      fill.(j) <- fill.(j) + 1
    done
  done;
  (col_ptr, row_ind)

(* ------------------------------------------------------------------ *)
(* Distance-2 column coloring                                          *)
(* ------------------------------------------------------------------ *)

type coloring = { ncolors : int; color : int array; groups : int array array }

let color_columns p =
  let nc = p.cols in
  let col_ptr, row_ind = transpose_pattern p in
  let color = Array.make nc (-1) in
  (* forbid.(c) = j marks color c as used by an earlier column sharing a
     row with column j. *)
  let forbid = Array.make (nc + 1) (-1) in
  let ncolors = ref 0 in
  for j = 0 to nc - 1 do
    for t = col_ptr.(j) to col_ptr.(j + 1) - 1 do
      let i = row_ind.(t) in
      for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
        let j' = p.col_ind.(k) in
        if color.(j') >= 0 then forbid.(color.(j')) <- j
      done
    done;
    let c = ref 0 in
    while forbid.(!c) = j do
      incr c
    done;
    color.(j) <- !c;
    if !c + 1 > !ncolors then ncolors := !c + 1
  done;
  (* Empty patterns still need one group so fd has a well-defined shape. *)
  let ng = max 1 !ncolors in
  let sizes = Array.make ng 0 in
  Array.iter (fun c -> if c >= 0 then sizes.(c) <- sizes.(c) + 1) color;
  let groups = Array.map (fun s -> Array.make s 0) sizes in
  let fill = Array.make ng 0 in
  Array.iteri
    (fun j c ->
      if c >= 0 then begin
        groups.(c).(fill.(c)) <- j;
        fill.(c) <- fill.(c) + 1
      end)
    color;
  { ncolors = ng; color; groups }

(* ------------------------------------------------------------------ *)
(* Colored finite differences                                          *)
(* ------------------------------------------------------------------ *)

type fd_ws = {
  fpat : pattern;
  coloring : coloring;
  ypert : float array array; (* per group: y with that group's columns bumped *)
  fpert : float array array; (* per group: f(t, ypert) *)
  hstep : float array; (* per column: the step actually taken *)
}

let make_fd_ws p coloring =
  if p.rows <> p.cols then invalid_arg "Sparse.make_fd_ws: square patterns only";
  let ng = coloring.ncolors in
  {
    fpat = p;
    coloring;
    ypert = Array.init ng (fun _ -> Array.make p.cols 0.);
    fpert = Array.init ng (fun _ -> Array.make p.rows 0.);
    hstep = Array.make p.cols 0.;
  }

let fd_groups ws = ws.coloring.ncolors
let fd_points ws = ws.ypert
let fd_values ws = ws.fpert

let fd_prepare ?(eps = 1e-8) ws ~y =
  let ng = ws.coloring.ncolors in
  for g = 0 to ng - 1 do
    let yp = ws.ypert.(g) in
    Array.blit y 0 yp 0 (Array.length y);
    Array.iter
      (fun j ->
        (* Same step rule as Jacobian.numeric, column by column, so the
           perturbed points are bitwise the ones the dense path uses. *)
        let h = eps *. Float.max 1. (Float.abs y.(j)) in
        ws.hstep.(j) <- h;
        yp.(j) <- y.(j) +. h)
      ws.coloring.groups.(g)
  done

let fd_scatter ws ~f0 ~jac =
  if jac.pat != ws.fpat && jac.pat <> ws.fpat then
    invalid_arg "Sparse.fd_scatter: jacobian pattern mismatch";
  let p = ws.fpat in
  for i = 0 to p.rows - 1 do
    for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
      let j = p.col_ind.(k) in
      let g = ws.coloring.color.(j) in
      (* Row i reads at most one perturbed column in group g (distance-2
         property), so fpert.(g).(i) equals the single-column perturbed
         value bitwise. *)
      jac.v.(k) <- (ws.fpert.(g).(i) -. f0.(i)) /. ws.hstep.(j)
    done
  done

(* ------------------------------------------------------------------ *)
(* Left-looking sparse LU, bitwise-compatible with Linalg.lu_factor    *)
(* ------------------------------------------------------------------ *)

type lu = {
  n : int;
  (* Strictly lower triangle, CSR over *pivot positions*, columns
     ascending within each row; unit diagonal implied. *)
  l_rp : int array;
  l_ci : int array;
  l_v : float array;
  (* Strict upper triangle, CSR over pivot positions, columns ascending. *)
  u_rp : int array;
  u_ci : int array;
  u_v : float array;
  u_diag : float array;
  piv : int array; (* original row index at each pivot position *)
}

(* Growable scratch arrays for the factor's L/U columns. *)
type buf = { mutable data : float array; mutable idx : int array; mutable len : int }

let buf_make n = { data = Array.make (max 16 n) 0.; idx = Array.make (max 16 n) 0; len = 0 }

let buf_push b i x =
  if b.len = Array.length b.data then begin
    let d = Array.make (2 * b.len) 0. in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d;
    let ix = Array.make (2 * b.len) 0 in
    Array.blit b.idx 0 ix 0 b.len;
    b.idx <- ix
  end;
  b.data.(b.len) <- x;
  b.idx.(b.len) <- i;
  b.len <- b.len + 1

let lu_factor (a : t) =
  let p = a.pat in
  if p.rows <> p.cols then invalid_arg "Sparse.lu_factor: not square";
  let n = p.rows in
  let col_ptr, row_ind = transpose_pattern p in
  (* Values in CSC order, parallel to row_ind. *)
  let cvals = Array.make (nnz p) 0. in
  (let fill = Array.copy col_ptr in
   for i = 0 to n - 1 do
     for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
       let j = p.col_ind.(k) in
       cvals.(fill.(j)) <- a.v.(k);
       fill.(j) <- fill.(j) + 1
     done
   done);
  (* pos.(r): current dense position of original row r; rowat is its
     inverse.  Dense partial pivoting never moves a row once it holds a
     pivot position < j, so "r is pivotal" iff pos.(r) < j. *)
  let pos = Array.init n Fun.id in
  let rowat = Array.init n Fun.id in
  let x = Array.make n 0. in
  let mark = Array.make n (-1) in
  let reach = Array.make n 0 in
  let stack = Array.make n 0 in
  let child = Array.make n 0 in
  (* L and U columns as they are produced, one span per pivot step.
     L rows are recorded as *original* indices (their final position is
     unknown until the factorisation ends); U rows are pivot positions. *)
  let lbuf = buf_make (4 * n) and ubuf = buf_make (4 * n) in
  let l_cp = Array.make (n + 1) 0 and u_cp = Array.make (n + 1) 0 in
  let u_diag = Array.make n 0. in
  let piv_ord = Array.make n 0 in
  (* Scratch for sorting the pivotal part of the reach set. *)
  let pivotal = Array.make n 0 in
  for j = 0 to n - 1 do
    (* Reach of the column pattern through the L graph. *)
    let nreach = ref 0 in
    for t = col_ptr.(j) to col_ptr.(j + 1) - 1 do
      let r0 = row_ind.(t) in
      if mark.(r0) <> j then begin
        (* Iterative DFS; children of a pivotal node p are the original
           rows of L column pos.(p). *)
        let sp = ref 0 in
        stack.(0) <- r0;
        child.(0) <- 0;
        mark.(r0) <- j;
        x.(r0) <- 0.;
        reach.(!nreach) <- r0;
        incr nreach;
        while !sp >= 0 do
          let r = stack.(!sp) in
          if pos.(r) < j then begin
            let cstart = l_cp.(pos.(r)) and cstop = l_cp.(pos.(r) + 1) in
            let k = ref (cstart + child.(!sp)) in
            while !k < cstop && mark.(lbuf.idx.(!k)) = j do
              incr k
            done;
            if !k < cstop then begin
              child.(!sp) <- !k - cstart + 1;
              let r' = lbuf.idx.(!k) in
              mark.(r') <- j;
              x.(r') <- 0.;
              reach.(!nreach) <- r';
              incr nreach;
              incr sp;
              stack.(!sp) <- r';
              child.(!sp) <- 0
            end
            else decr sp
          end
          else decr sp
        done
      end
    done;
    (* Scatter A(:, j). *)
    for t = col_ptr.(j) to col_ptr.(j + 1) - 1 do
      x.(row_ind.(t)) <- cvals.(t)
    done;
    (* Apply updates from pivotal reach nodes in ascending pivot order —
       the order the dense right-looking elimination applies them. *)
    let npiv = ref 0 in
    for t = 0 to !nreach - 1 do
      let r = reach.(t) in
      if pos.(r) < j then begin
        pivotal.(!npiv) <- pos.(r);
        incr npiv
      end
    done;
    let piv_part = Array.sub pivotal 0 !npiv in
    Array.sort compare piv_part;
    Array.iter
      (fun pp ->
        let xi = x.(rowat.(pp)) in
        for k = l_cp.(pp) to l_cp.(pp + 1) - 1 do
          let r = lbuf.idx.(k) in
          x.(r) <- x.(r) -. (lbuf.data.(k) *. xi)
        done)
      piv_part;
    (* Pivot search over non-pivotal reach entries; everything outside
       the reach is an exact zero in the dense path.  Dense scans
       positions j..n-1 taking the first strictly-larger magnitude, so
       the winner is the smallest position attaining the maximum, seeded
       by the current diagonal position. *)
    let dr = rowat.(j) in
    let best_row = ref dr in
    let best_val = ref (if mark.(dr) = j then Float.abs x.(dr) else 0.) in
    for t = 0 to !nreach - 1 do
      let r = reach.(t) in
      if pos.(r) > j then begin
        let v = Float.abs x.(r) in
        if v > !best_val || (v = !best_val && pos.(r) < pos.(!best_row)) then begin
          best_val := v;
          best_row := r
        end
      end
    done;
    let pr = !best_row in
    let pivot = if mark.(pr) = j then x.(pr) else 0. in
    if pivot = 0. then raise (Linalg.Singular j);
    (* Record the swap exactly as the dense code performs it. *)
    if pr <> dr then begin
      let pq = pos.(pr) in
      pos.(pr) <- j;
      pos.(dr) <- pq;
      rowat.(j) <- pr;
      rowat.(pq) <- dr
    end;
    (* Emit U column j (pivotal rows ascending, then the diagonal) and
       L column j (multipliers, original row indices). *)
    Array.iter (fun pp -> buf_push ubuf pp x.(rowat.(pp))) piv_part;
    u_diag.(j) <- pivot;
    for t = 0 to !nreach - 1 do
      let r = reach.(t) in
      if pos.(r) > j then buf_push lbuf r (x.(r) /. pivot)
    done;
    l_cp.(j + 1) <- lbuf.len;
    u_cp.(j + 1) <- ubuf.len;
    piv_ord.(j) <- rowat.(j)
  done;
  (* Convert the column spans to CSR over final pivot positions.  Rows
     fill in ascending column order because columns are visited in
     order, so no per-row sort is needed. *)
  let l_count = Array.make n 0 in
  for k = 0 to lbuf.len - 1 do
    let q = pos.(lbuf.idx.(k)) in
    l_count.(q) <- l_count.(q) + 1
  done;
  let l_rp = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    l_rp.(i + 1) <- l_rp.(i) + l_count.(i)
  done;
  let l_ci = Array.make lbuf.len 0 and l_v = Array.make lbuf.len 0. in
  let fill = Array.copy l_rp in
  for c = 0 to n - 1 do
    for k = l_cp.(c) to l_cp.(c + 1) - 1 do
      let q = pos.(lbuf.idx.(k)) in
      l_ci.(fill.(q)) <- c;
      l_v.(fill.(q)) <- lbuf.data.(k);
      fill.(q) <- fill.(q) + 1
    done
  done;
  let u_count = Array.make n 0 in
  for k = 0 to ubuf.len - 1 do
    u_count.(ubuf.idx.(k)) <- u_count.(ubuf.idx.(k)) + 1
  done;
  let u_rp = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    u_rp.(i + 1) <- u_rp.(i) + u_count.(i)
  done;
  let u_ci = Array.make ubuf.len 0 and u_v = Array.make ubuf.len 0. in
  let ufill = Array.copy u_rp in
  for c = 0 to n - 1 do
    for k = u_cp.(c) to u_cp.(c + 1) - 1 do
      let q = ubuf.idx.(k) in
      u_ci.(ufill.(q)) <- c;
      u_v.(ufill.(q)) <- ubuf.data.(k);
      ufill.(q) <- ufill.(q) + 1
    done
  done;
  { n; l_rp; l_ci; l_v; u_rp; u_ci; u_v; u_diag; piv = piv_ord }

let lu_nnz lu = lu.n + Array.length lu.l_v + Array.length lu.u_v

let lu_solve lu b =
  let n = lu.n in
  if Array.length b <> n then invalid_arg "Sparse.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(lu.piv.(i))) in
  (* Row-oriented substitutions: each row accumulates in ascending
     column order, exactly like the dense inner loops. *)
  for i = 1 to n - 1 do
    for k = lu.l_rp.(i) to lu.l_rp.(i + 1) - 1 do
      x.(i) <- x.(i) -. (lu.l_v.(k) *. x.(lu.l_ci.(k)))
    done
  done;
  for i = n - 1 downto 0 do
    for k = lu.u_rp.(i) to lu.u_rp.(i + 1) - 1 do
      x.(i) <- x.(i) -. (lu.u_v.(k) *. x.(lu.u_ci.(k)))
    done;
    x.(i) <- x.(i) /. lu.u_diag.(i)
  done;
  x

(* ------------------------------------------------------------------ *)
(* Fill-reducing ordering (reverse Cuthill–McKee)                      *)
(* ------------------------------------------------------------------ *)

let rcm_ordering p =
  if p.rows <> p.cols then invalid_arg "Sparse.rcm_ordering: not square";
  let n = p.rows in
  (* Symmetrized adjacency: i ~ j iff (i,j) or (j,i) in the pattern. *)
  let sym = Hashtbl.create (4 * nnz p) in
  let adj = Array.make n [] in
  let add i j =
    if i <> j && not (Hashtbl.mem sym (i, j)) then begin
      Hashtbl.replace sym (i, j) ();
      adj.(i) <- j :: adj.(i)
    end
  in
  for i = 0 to n - 1 do
    for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
      let j = p.col_ind.(k) in
      add i j;
      add j i
    done
  done;
  let deg = Array.map List.length adj in
  Array.iteri
    (fun i l -> adj.(i) <- List.sort (fun a b -> compare (deg.(a), a) (deg.(b), b)) l)
    adj;
  let order = Array.make n 0 in
  let visited = Array.make n false in
  let count = ref 0 in
  let q = Queue.create () in
  let bfs_from s =
    visited.(s) <- true;
    Queue.push s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      order.(!count) <- v;
      incr count;
      List.iter
        (fun w ->
          if not visited.(w) then begin
            visited.(w) <- true;
            Queue.push w q
          end)
        adj.(v)
    done
  in
  (* Start each component from a minimum-degree vertex. *)
  let by_deg = Array.init n Fun.id in
  Array.sort (fun a b -> compare (deg.(a), a) (deg.(b), b)) by_deg;
  Array.iter (fun s -> if not visited.(s) then bfs_from s) by_deg;
  (* Reverse for RCM. *)
  Array.init n (fun k -> order.(n - 1 - k))

let permute_symmetric (a : t) perm =
  let p = a.pat in
  if p.rows <> p.cols then invalid_arg "Sparse.permute_symmetric";
  let n = p.rows in
  if Array.length perm <> n then invalid_arg "Sparse.permute_symmetric: perm";
  (* inv.(old) = new *)
  let inv = Array.make n (-1) in
  Array.iteri (fun k old -> inv.(old) <- k) perm;
  Array.iter (fun v -> if v < 0 then invalid_arg "Sparse.permute_symmetric: not a permutation") inv;
  let entries = ref [] in
  for i = 0 to n - 1 do
    for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
      entries := (inv.(i), inv.(p.col_ind.(k))) :: !entries
    done
  done;
  let pat = pattern_of_entries ~rows:n ~cols:n !entries in
  let b = create pat in
  for i = 0 to n - 1 do
    for k = p.row_ptr.(i) to p.row_ptr.(i + 1) - 1 do
      let s = index pat inv.(i) inv.(p.col_ind.(k)) in
      b.v.(s) <- a.v.(k)
    done
  done;
  b

let solve_with_ordering (a : t) ~perm b =
  let n = a.pat.rows in
  let inv = Array.make n 0 in
  Array.iteri (fun k old -> inv.(old) <- k) perm;
  let pa = permute_symmetric a perm in
  let lu = lu_factor pa in
  let pb = Array.init n (fun k -> b.(perm.(k))) in
  let px = lu_solve lu pb in
  Array.init n (fun i -> px.(inv.(i)))

(* ------------------------------------------------------------------ *)
(* Newton iteration matrix  M = alpha*I - beta*J                       *)
(* ------------------------------------------------------------------ *)

type newton = {
  m : t;
  diag_idx : int array; (* CSR slot of each diagonal entry of m *)
  scatter : int array; (* CSR slot in m for each CSR slot of the J pattern *)
}

let make_newton jpat =
  if jpat.rows <> jpat.cols then invalid_arg "Sparse.make_newton: not square";
  let n = jpat.rows in
  let entries = ref [] in
  for i = 0 to n - 1 do
    entries := (i, i) :: !entries;
    for k = jpat.row_ptr.(i) to jpat.row_ptr.(i + 1) - 1 do
      entries := (i, jpat.col_ind.(k)) :: !entries
    done
  done;
  let mpat = pattern_of_entries ~rows:n ~cols:n !entries in
  let m = create mpat in
  let diag_idx = Array.init n (fun i -> index mpat i i) in
  let scatter = Array.make (nnz jpat) 0 in
  for i = 0 to n - 1 do
    for k = jpat.row_ptr.(i) to jpat.row_ptr.(i + 1) - 1 do
      scatter.(k) <- index mpat i jpat.col_ind.(k)
    done
  done;
  { m; diag_idx; scatter }

let newton_matrix nw = nw.m

let newton_assemble nw ~(jac : t) ~alpha ~beta =
  if Array.length nw.scatter <> Array.length jac.v then
    invalid_arg "Sparse.newton_assemble: jacobian pattern mismatch";
  (* Dense builds every entry as [(if diag then alpha else 0.) -. beta*J];
     replaying the same two operations per structural entry keeps the
     matrix bitwise equal to the dense one. *)
  Array.fill nw.m.v 0 (Array.length nw.m.v) 0.;
  Array.iter (fun k -> nw.m.v.(k) <- alpha) nw.diag_idx;
  let nj = Array.length jac.v in
  for k = 0 to nj - 1 do
    let s = nw.scatter.(k) in
    nw.m.v.(s) <- nw.m.v.(s) -. (beta *. jac.v.(k))
  done;
  (* Diagonal slots with no J entry still need the dense no-op
     [alpha -. beta *. 0.] replayed: it is bitwise [alpha], so nothing
     to do. *)
  ()
