type mode = Adams_mode | Bdf_mode

type result = {
  trajectory : Odesys.trajectory;
  switches : (float * mode) list;
  final_mode : mode;
}

let pp_mode ppf = function
  | Adams_mode -> Fmt.string ppf "adams"
  | Bdf_mode -> Fmt.string ppf "bdf"

(* Local Lipschitz estimate ||f(a) - f(b)|| / ||a - b||. *)
let lipschitz fa fb ya yb =
  let dy = Array.map2 ( -. ) ya yb in
  let df = Array.map2 ( -. ) fa fb in
  let ndy = Linalg.norm2 dy in
  if ndy < 1e-300 then 0. else Linalg.norm2 df /. ndy

let error_weights atol rtol a b =
  Array.init (Array.length a) (fun i ->
      atol +. (rtol *. Float.max (Float.abs a.(i)) (Float.abs b.(i))))

let integrate ?(atol = 1e-8) ?(rtol = 1e-6) ?h0 ?(max_steps = 2_000_000)
    ?(stiffness_window = 5) ?(start_mode = Adams_mode) ?(max_retries = 8)
    ?jac_mode ?jac_batch (sys : Odesys.t) ~t0 ~y0 ~tend =
  let n = sys.dim in
  (* The Jacobian plan (and its sparse workspace) is resolved lazily on
     the first BDF attempt: purely non-stiff runs never pay for it. *)
  let jplan = lazy (Jacobian.plan ?jac_mode ?batch:jac_batch sys) in
  let span = tend -. t0 in
  if span <= 0. then invalid_arg "Lsoda.integrate: tend <= t0";
  let h = ref (match h0 with Some h -> h | None -> span /. 1000.) in
  let h_min = span *. 1e-14 in
  let mode = ref start_mode in
  let switches = ref [] in
  let t = ref t0 in
  let y = ref (Array.copy y0) in
  let f_now = ref (Odesys.rhs sys t0 y0) in
  (* One step of history for the order-2 formulas. *)
  let y_prev = ref None in
  let f_prev = ref None in
  let h_prev = ref !h in
  let ts = ref [ t0 ] and ys = ref [ Array.copy y0 ] in
  let stiff_score = ref 0 in
  let nonstiff_score = ref 0 in
  let cooldown = ref 0 in
  let steps = ref 0 in
  let switch_to m =
    if !mode <> m then begin
      mode := m;
      switches := (!t, m) :: !switches;
      stiff_score := 0;
      nonstiff_score := 0;
      (* Hysteresis: forbid another switch for a while, otherwise the
         driver thrashes on problems that ride the stiffness boundary. *)
      cooldown := 25;
      (* Restart as a one-step method after a switch. *)
      y_prev := None;
      f_prev := None
    end
  in
  let accept h_used y_new f_new =
    if !cooldown > 0 then decr cooldown;
    y_prev := Some !y;
    f_prev := Some !f_now;
    h_prev := h_used;
    t := !t +. h_used;
    y := y_new;
    f_now := f_new;
    sys.counters.steps <- sys.counters.steps + 1;
    ts := !t :: !ts;
    ys := Array.copy y_new :: !ys
  in
  (* --- One attempted Adams (ABM2 PECE) step; returns error measure. --- *)
  let adams_attempt h' =
    let r = h' /. !h_prev in
    let pred =
      match !f_prev with
      | Some fp ->
          (* Variable-step AB2 predictor. *)
          Array.init n (fun i ->
              !y.(i)
              +. (h'
                  *. (((1. +. (r /. 2.)) *. !f_now.(i))
                      -. (r /. 2. *. fp.(i)))))
      | None -> Array.init n (fun i -> !y.(i) +. (h' *. !f_now.(i)))
    in
    let fpred = Odesys.rhs sys (!t +. h') pred in
    (* Trapezoidal corrector. *)
    let corr =
      Array.init n (fun i ->
          !y.(i) +. (h' /. 2. *. (!f_now.(i) +. fpred.(i))))
    in
    let fcorr = Odesys.rhs sys (!t +. h') corr in
    let diff = Array.map2 ( -. ) corr pred in
    let weights = error_weights atol rtol !y corr in
    (* Milne estimate: for the AB2/AM2 pair the local error of the
       corrector is about 1/6 of the predictor-corrector gap. *)
    let err = Linalg.wrms_norm diff weights /. 6. in
    (* Stiffness probe: the predictor-corrector gap points along the
       dominant (stiffest) eigendirection, so this difference quotient
       approximates the magnitude of the stiff eigenvalue. *)
    let l = lipschitz fpred fcorr pred corr in
    (corr, fcorr, l, err)
  in
  (* --- One attempted BDF step (order 2 when history exists). --- *)
  let bdf_attempt h' =
    let t_next = !t +. h' in
    let pred = Array.init n (fun i -> !y.(i) +. (h' *. !f_now.(i))) in
    let alpha0, rhs_const =
      match !y_prev with
      | Some yp ->
          let tau = h' /. !h_prev in
          let alpha0 = (1. +. (2. *. tau)) /. (1. +. tau) in
          let c1 = 1. +. tau in
          let c2 = Float.neg (tau *. tau) /. (1. +. tau) in
          ( alpha0,
            Array.init n (fun i -> (c1 *. !y.(i)) +. (c2 *. yp.(i))) )
      | None -> (1., Array.copy !y)
    in
    match
      Bdf.solve_implicit_stage_with (Lazy.force jplan) sys ~tol:1e-8
        ~max_iter:12 ~t_next ~beta_h:h' ~rhs_const ~alpha0 ~y_guess:pred
    with
    | exception Om_guard.Om_error.Error (Om_guard.Om_error.Newton_failure _)
      ->
        None
    | y_new ->
        let f_new = Odesys.rhs sys t_next y_new in
        let diff = Array.map2 ( -. ) y_new pred in
        let weights = error_weights atol rtol !y y_new in
        (* The explicit-Euler predictor gap overestimates the BDF2 error;
           the 1/3 factor matches the constant-step error constants. *)
        let err = Linalg.wrms_norm diff weights /. 3. in
        (* Same stiff-eigendirection probe as the Adams path. *)
        let f_pred = Odesys.rhs sys t_next pred in
        let l = lipschitz f_pred f_new pred y_new in
        Some (y_new, f_new, l, err)
  in
  (* Consecutive guarded-fault retries at the current time; reset by any
     attempt that runs to completion (accepted or error-rejected). *)
  let consec = ref 0 in
  let step_failure step retries reason =
    Om_guard.Om_error.(
      error (Step_failure { solver = "lsoda"; time = !t; step; retries; reason }))
  in
  (* Backoff ladder shared by both modes: a guarded runtime fault inside
     an attempt is retried at the same step first (transient faults —
     injected poisons fire once — then recover bitwise-identically), then
     with halved steps, bounded by [max_retries]. *)
  let retry_fault h' cause =
    (* Cancellations and deadline overruns abort at once: retrying
       cannot unexpire a deadline (Om_error.retryable). *)
    if not (Om_guard.Om_error.retryable cause) then
      Om_guard.Om_error.error cause;
    sys.counters.retries <- sys.counters.retries + 1;
    incr consec;
    if !consec > max_retries then
      step_failure h' (!consec - 1) (Om_guard.Om_error.to_string cause);
    if !consec > 1 then h := h' /. 2.
  in
  while !t < tend -. 1e-12 do
    incr steps;
    if !steps > max_steps then
      step_failure !h sys.counters.retries "step budget exhausted";
    if !h < h_min then
      step_failure !h sys.counters.retries "step size underflow";
    let h' = Float.min !h (tend -. !t) in
    match !mode with
    | Adams_mode -> (
        match adams_attempt h' with
        | exception Om_guard.Om_error.Error cause -> retry_fault h' cause
        | corr, fcorr, l, err ->
            consec := 0;
            if err <= 1. then begin
              (* Stiffness monitor: the error-controlled step wants to grow
                 but h·L pins us at the stability boundary. *)
              if h' *. l > 0.8 then incr stiff_score
              else if h' *. l < 0.5 then stiff_score := 0;
              accept h' corr fcorr;
              if !stiff_score >= stiffness_window && !cooldown = 0 then
                switch_to Bdf_mode
            end
            else sys.counters.rejected <- sys.counters.rejected + 1;
            let factor =
              if err = 0. then 4.
              else
                Float.min 4.
                  (Float.max 0.1 (0.9 /. Float.sqrt (Float.sqrt err)))
            in
            (* Never let the Adams step grow far past the stability bound;
               LSODA caps the non-stiff step similarly. *)
            h := h' *. factor)
    | Bdf_mode -> (
        match bdf_attempt h' with
        | exception Om_guard.Om_error.Error cause -> retry_fault h' cause
        | None ->
            (* Newton failure: retry with a smaller step. *)
            consec := 0;
            sys.counters.rejected <- sys.counters.rejected + 1;
            h := h' /. 4.
        | Some (y_new, f_new, l, err) ->
            consec := 0;
            if err <= 1. then begin
              if h' *. l < 0.2 then incr nonstiff_score
              else nonstiff_score := 0;
              accept h' y_new f_new;
              if !nonstiff_score >= 2 * stiffness_window && !cooldown = 0
              then switch_to Adams_mode
            end
            else sys.counters.rejected <- sys.counters.rejected + 1;
            let factor =
              if err = 0. then 4.
              else
                Float.min 4.
                  (Float.max 0.1 (0.9 /. Float.sqrt (Float.sqrt err)))
            in
            h := h' *. factor)
  done;
  {
    trajectory =
      {
        Odesys.ts = Array.of_list (List.rev !ts);
        states = Array.of_list (List.rev !ys);
      };
    switches = List.rev !switches;
    final_mode = !mode;
  }
