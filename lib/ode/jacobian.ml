let numeric_into ?(eps = 1e-8) (sys : Odesys.t) t y (m : Linalg.mat) =
  sys.counters.jac_calls <- sys.counters.jac_calls + 1;
  let n = sys.dim in
  let f0 = Array.make n 0. in
  Odesys.rhs_into sys t y f0;
  let yj = Array.copy y in
  let fj = Array.make n 0. in
  for j = 0 to n - 1 do
    let h = eps *. Float.max 1. (Float.abs y.(j)) in
    yj.(j) <- y.(j) +. h;
    Odesys.rhs_into sys t yj fj;
    yj.(j) <- y.(j);
    for i = 0 to n - 1 do
      m.(i).(j) <- (fj.(i) -. f0.(i)) /. h
    done
  done

let numeric ?eps (sys : Odesys.t) t y =
  let m = Linalg.make sys.dim sys.dim 0. in
  numeric_into ?eps sys t y m;
  m

let eval_into ?eps (sys : Odesys.t) t y m =
  match sys.jac with
  | Some j ->
      sys.counters.jac_calls <- sys.counters.jac_calls + 1;
      j t y m
  | None -> numeric_into ?eps sys t y m

let analytic (sys : Odesys.t) t y =
  let m = Linalg.make sys.dim sys.dim 0. in
  eval_into sys t y m;
  m

(* ------------------------------------------------------------------ *)
(* Sparse evaluation context and jac-mode resolution                   *)
(* ------------------------------------------------------------------ *)

type batch_rhs = float -> float array array -> float array array -> unit

type sparse_ctx = {
  spat : Sparse.pattern;
  coloring : Sparse.coloring;
  sj : Sparse.t;
  fd : Sparse.fd_ws;
  f0 : float array;
  newton : Sparse.newton;
  batch : batch_rhs option;
}

let sparse_ctx ?batch (sys : Odesys.t) =
  match sys.sparsity with
  | None -> None
  | Some spat ->
      let coloring = Sparse.color_columns spat in
      Some
        {
          spat;
          coloring;
          sj = Sparse.create spat;
          fd = Sparse.make_fd_ws spat coloring;
          f0 = Array.make sys.dim 0.;
          newton = Sparse.make_newton spat;
          batch;
        }

type plan =
  | Dense_plan
  | Banded_plan of int * int
  | Sparse_plan of sparse_ctx

let auto_dim_min = 16
let auto_density_max = 0.25

let plan ?(jac_mode = Odesys.Auto) ?banded ?batch (sys : Odesys.t) =
  match (banded, jac_mode) with
  | Some (ml, mu), _ -> Banded_plan (ml, mu)
  | None, Odesys.Dense -> Dense_plan
  | None, Odesys.Banded (ml, mu) -> Banded_plan (ml, mu)
  | None, Odesys.Sparse -> (
      match sparse_ctx ?batch sys with
      | Some c -> Sparse_plan c
      | None -> Dense_plan)
  | None, Odesys.Auto -> (
      match sys.sparsity with
      | Some p
        when sys.dim >= auto_dim_min && Sparse.density p <= auto_density_max
        -> (
          match sparse_ctx ?batch sys with
          | Some c -> Sparse_plan c
          | None -> Dense_plan)
      | _ -> Dense_plan)

let sparse_eval_into ?eps (sys : Odesys.t) ctx t y =
  sys.counters.jac_calls <- sys.counters.jac_calls + 1;
  match sys.sjac with
  | Some sj -> sj t y ctx.sj.v
  | None ->
      (* Colored forward differences: one RHS evaluation per color plus
         the base point, against [dim + 1] for the dense path. *)
      Sparse.fd_prepare ?eps ctx.fd ~y;
      Odesys.rhs_into sys t y ctx.f0;
      let pts = Sparse.fd_points ctx.fd and vals = Sparse.fd_values ctx.fd in
      (match ctx.batch with
      | Some b ->
          b t pts vals;
          sys.counters.rhs_calls <-
            sys.counters.rhs_calls + Sparse.fd_groups ctx.fd
      | None ->
          for g = 0 to Sparse.fd_groups ctx.fd - 1 do
            Odesys.rhs_into sys t pts.(g) vals.(g)
          done);
      Sparse.fd_scatter ctx.fd ~f0:ctx.f0 ~jac:ctx.sj

let mode_stats ?(jac_mode = Odesys.Auto) ?banded (sys : Odesys.t) =
  let sparse_stats (p : Sparse.pattern) =
    let c = Sparse.color_columns p in
    ("sparse", Some (Sparse.nnz p, c.Sparse.ncolors))
  in
  match (banded, jac_mode) with
  | Some (ml, mu), _ | None, Odesys.Banded (ml, mu) ->
      (Printf.sprintf "banded:%d:%d" ml mu, None)
  | None, Odesys.Dense -> ("dense", None)
  | None, Odesys.Sparse -> (
      match sys.sparsity with
      | Some p -> sparse_stats p
      | None -> ("dense", None))
  | None, Odesys.Auto -> (
      match sys.sparsity with
      | Some p
        when sys.dim >= auto_dim_min && Sparse.density p <= auto_density_max
        ->
          sparse_stats p
      | _ -> ("dense", None))

let plan_stats = function
  | Dense_plan -> ("dense", None)
  | Banded_plan (ml, mu) -> (Printf.sprintf "banded:%d:%d" ml mu, None)
  | Sparse_plan ctx ->
      ("sparse", Some (Sparse.nnz ctx.spat, ctx.coloring.ncolors))
