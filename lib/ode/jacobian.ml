let numeric_into ?(eps = 1e-8) (sys : Odesys.t) t y (m : Linalg.mat) =
  let n = sys.dim in
  let f0 = Array.make n 0. in
  Odesys.rhs_into sys t y f0;
  let yj = Array.copy y in
  let fj = Array.make n 0. in
  for j = 0 to n - 1 do
    let h = eps *. Float.max 1. (Float.abs y.(j)) in
    yj.(j) <- y.(j) +. h;
    Odesys.rhs_into sys t yj fj;
    yj.(j) <- y.(j);
    for i = 0 to n - 1 do
      m.(i).(j) <- (fj.(i) -. f0.(i)) /. h
    done
  done

let numeric ?eps (sys : Odesys.t) t y =
  let m = Linalg.make sys.dim sys.dim 0. in
  numeric_into ?eps sys t y m;
  sys.counters.jac_calls <- sys.counters.jac_calls + 1;
  m

let eval_into ?eps (sys : Odesys.t) t y m =
  sys.counters.jac_calls <- sys.counters.jac_calls + 1;
  match sys.jac with
  | Some j -> j t y m
  | None -> numeric_into ?eps sys t y m

let analytic (sys : Odesys.t) t y =
  let m = Linalg.make sys.dim sys.dim 0. in
  eval_into sys t y m;
  m
