(** One parallel RHS round, described independently of how it is run.

    A round descriptor bundles everything the supervisor/worker scheme
    needs to execute one right-hand-side evaluation: the LPT task
    assignment, per-task flop costs, the state slots each task reads and
    the output slots it writes, and the state dimension.  The same
    descriptor drives both back ends:

    - {!Supervisor.round_desc} replays the round on the discrete-event
      machine model and charges simulated communication time;
    - [Om_parallel.Par_exec] executes the round for real on OCaml
      domains.

    Keeping one type for both is what lets the runtime swap execution
    modes without recomputing schedules. *)

type t = {
  assignment : int array;  (** task id -> worker (0-based) *)
  task_flops : float array;  (** per-task cost in flop units *)
  task_reads : int list array;  (** state slots each task reads *)
  task_writes : int list array;  (** output slots each task writes *)
  state_dim : int;  (** length of the state vector *)
}

val make :
  assignment:int array ->
  task_flops:float array ->
  task_reads:int list array ->
  task_writes:int list array ->
  state_dim:int ->
  t
(** Validate and build a descriptor.
    @raise Invalid_argument on mismatched array lengths or negative
    worker ids. *)

val n_tasks : t -> int
(** Number of tasks in the round. *)

val min_workers : t -> int
(** [1 + max assignment]: the smallest worker count the assignment is
    valid for ([0] when there are no tasks). *)
