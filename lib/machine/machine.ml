type t = {
  name : string;
  latency : float;
  per_byte : float;
  flop_time : float;
  physical_procs : int;
  timeshared : bool;
}

(* Effective scalar speed of the 1995-era processors on the
   transcendental-heavy bearing code (~3 Mflop-units/s), calibrated so the
   2D bearing evaluates at the paper's ~90-100 RHS-calls/s on one
   processor (Figure 12). *)
let default_flop_time = 0.35e-6

let make ~name ~latency ~per_byte ?(flop_time = default_flop_time)
    ?(timeshared = false) ~physical_procs () =
  if physical_procs < 1 then invalid_arg "Machine.make: physical_procs < 1";
  { name; latency; per_byte; flop_time; physical_procs; timeshared }

let sparccenter_2000 =
  make ~name:"SPARCCenter 2000" ~latency:4e-6 ~per_byte:0.04e-6
    ~timeshared:true ~physical_procs:8 ()

let parsytec_gcpp =
  make ~name:"Parsytec GC/PP" ~latency:140e-6 ~per_byte:0.9e-6
    ~physical_procs:64 ()

let t3d_class_mpp =
  make ~name:"T3D-class MPP" ~latency:6e-6 ~per_byte:0.008e-6
    ~physical_procs:512 ()

let ideal ?(flop_time = default_flop_time) n =
  make ~name:(Printf.sprintf "ideal-%d" n) ~latency:0. ~per_byte:0.
    ~flop_time ~physical_procs:n ()

let message_time m ~bytes = m.latency +. (float_of_int bytes *. m.per_byte)

let slowdown m ~nworkers =
  if not m.timeshared then 1.
  else
    (* One CPU is pinned by the solver process and the OS; the remaining
       workers time-share what is left. *)
    let available = m.physical_procs - 1 in
    if nworkers <= available then 1.
    else float_of_int nworkers /. float_of_int available

let compute_time m ~flops ~nworkers =
  flops *. m.flop_time *. slowdown m ~nworkers
