type t = {
  assignment : int array;
  task_flops : float array;
  task_reads : int list array;
  task_writes : int list array;
  state_dim : int;
}

let make ~assignment ~task_flops ~task_reads ~task_writes ~state_dim =
  let n = Array.length assignment in
  if Array.length task_flops <> n then
    invalid_arg "Round_desc.make: task_flops length mismatch";
  if Array.length task_reads <> n then
    invalid_arg "Round_desc.make: task_reads length mismatch";
  if Array.length task_writes <> n then
    invalid_arg "Round_desc.make: task_writes length mismatch";
  if state_dim < 0 then invalid_arg "Round_desc.make: negative state_dim";
  Array.iter
    (fun w -> if w < 0 then invalid_arg "Round_desc.make: negative worker id")
    assignment;
  { assignment; task_flops; task_reads; task_writes; state_dim }

let n_tasks d = Array.length d.assignment

let min_workers d =
  Array.fold_left (fun acc w -> if w >= acc then w + 1 else acc) 0 d.assignment
