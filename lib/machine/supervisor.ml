type comm_strategy = Broadcast_state | Needed_only

type round_result = {
  duration : float;
  worker_compute : float array;
  supervisor_busy : float;
  bytes_sent : int;
  bytes_received : int;
}

let bytes_per_value = 8

let sequential_time (m : Machine.t) ~task_flops =
  Array.fold_left (fun acc f -> acc +. (f *. m.flop_time)) 0. task_flops

module Iset = Set.Make (Int)

let union_indices tasks indices_of =
  List.fold_left
    (fun acc i -> List.fold_left (fun s x -> Iset.add x s) acc (indices_of i))
    Iset.empty tasks

type segment = {
  who : int;
  t0 : float;
  t1 : float;
  kind : [ `Send | `Compute | `Recv ];
}

let round_traced (m : Machine.t) ~nworkers ~assignment ~task_flops
    ~task_reads ~task_writes ~state_dim ~strategy =
  let trace = ref [] in
  let ntasks = Array.length task_flops in
  if Array.length assignment <> ntasks then
    invalid_arg "Supervisor.round: assignment length mismatch";
  if nworkers = 0 then
    ( {
        duration = sequential_time m ~task_flops;
        worker_compute = [||];
        supervisor_busy = 0.;
        bytes_sent = 0;
        bytes_received = 0;
      },
      [
        {
          who = -1;
          t0 = 0.;
          t1 = sequential_time m ~task_flops;
          kind = `Compute;
        };
      ] )
  else begin
    Array.iter
      (fun w ->
        if w < 0 || w >= nworkers then
          invalid_arg "Supervisor.round: worker id out of range")
      assignment;
    (* Per-worker task lists. *)
    let tasks_of = Array.make nworkers [] in
    for i = ntasks - 1 downto 0 do
      tasks_of.(assignment.(i)) <- i :: tasks_of.(assignment.(i))
    done;
    let in_bytes w =
      match strategy with
      | Broadcast_state -> (state_dim + 1) * bytes_per_value
      | Needed_only ->
          (* +1 for the time value, always shipped. *)
          (Iset.cardinal
             (union_indices tasks_of.(w) (fun i -> task_reads.(i)))
          + 1)
          * bytes_per_value
    in
    let out_bytes w =
      Iset.cardinal (union_indices tasks_of.(w) (fun i -> task_writes.(i)))
      * bytes_per_value
    in
    let compute_s w =
      let flops =
        List.fold_left (fun acc i -> acc +. task_flops.(i)) 0. tasks_of.(w)
      in
      Machine.compute_time m ~flops ~nworkers
    in
    let sim = Event_sim.create () in
    let supervisor_free = ref 0. in
    let supervisor_busy = ref 0. in
    let occupy_supervisor kind duration =
      (* The supervisor's port is a serial resource. *)
      let start = Float.max !supervisor_free (Event_sim.now sim) in
      supervisor_free := start +. duration;
      supervisor_busy := !supervisor_busy +. duration;
      trace := { who = -1; t0 = start; t1 = !supervisor_free; kind } :: !trace;
      !supervisor_free
    in
    let worker_compute = Array.make nworkers 0. in
    let results_pending = ref nworkers in
    let round_end = ref 0. in
    let bytes_sent = ref 0 in
    let bytes_received = ref 0 in
    (* Messages are priced entirely at the supervisor, whose port is the
       serial bottleneck resource: each send or receive occupies it for
       [latency + bytes * per_byte] (on both 1995 machines the per-message
       latency is dominated by software handling on the sending CPU, LogP's
       "o ~ L"). *)
    let message_cost bytes =
      m.latency +. (float_of_int bytes *. m.per_byte)
    in
    (* Phase 1: supervisor injects one state message per worker, serially,
       starting at t=0; the message lands when injection completes. *)
    for w = 0 to nworkers - 1 do
      let bytes = in_bytes w in
      bytes_sent := !bytes_sent + bytes;
      let arrival = occupy_supervisor `Send (message_cost bytes) in
      Event_sim.at sim arrival (fun () ->
          (* Phase 2: the worker computes its tasks; its result message is
             ready immediately after (worker-side injection overlaps the
             supervisor-side drain below). *)
          let comp = compute_s w in
          worker_compute.(w) <- comp;
          trace :=
            { who = w; t0 = Event_sim.now sim;
              t1 = Event_sim.now sim +. comp; kind = `Compute }
            :: !trace;
          let obytes = out_bytes w in
          bytes_received := !bytes_received + obytes;
          let ready = Event_sim.now sim +. comp in
          Event_sim.at sim ready (fun () ->
              (* Phase 3: the supervisor drains results serially. *)
              let recv_done = occupy_supervisor `Recv (message_cost obytes) in
              decr results_pending;
              if !results_pending = 0 then round_end := recv_done))
    done;
    Event_sim.run sim;
    ( {
        duration = !round_end;
        worker_compute;
        supervisor_busy = !supervisor_busy;
        bytes_sent = !bytes_sent;
        bytes_received = !bytes_received;
      },
      List.rev !trace )
  end

let round m ~nworkers ~assignment ~task_flops ~task_reads ~task_writes
    ~state_dim ~strategy =
  fst
    (round_traced m ~nworkers ~assignment ~task_flops ~task_reads
       ~task_writes ~state_dim ~strategy)

let tree_round (m : Machine.t) ~fanout ~nworkers ~assignment ~task_flops
    ~task_reads ~task_writes ~state_dim =
  ignore task_reads;
  if fanout < 2 then invalid_arg "Supervisor.tree_round: fanout < 2";
  if nworkers < 1 then invalid_arg "Supervisor.tree_round: nworkers < 1";
  let ntasks = Array.length task_flops in
  if Array.length assignment <> ntasks then
    invalid_arg "Supervisor.tree_round: assignment length mismatch";
  let tasks_of = Array.make nworkers [] in
  for i = ntasks - 1 downto 0 do
    tasks_of.(assignment.(i)) <- i :: tasks_of.(assignment.(i))
  done;
  let state_bytes = (state_dim + 1) * bytes_per_value in
  let msg_cost bytes = m.latency +. (float_of_int bytes *. m.per_byte) in
  let out_bytes w =
    Iset.cardinal (union_indices tasks_of.(w) (fun i -> task_writes.(i)))
    * bytes_per_value
  in
  let compute_s w =
    let flops =
      List.fold_left (fun acc i -> acc +. task_flops.(i)) 0. tasks_of.(w)
    in
    Machine.compute_time m ~flops ~nworkers
  in
  (* k-ary tree over the workers with the supervisor as virtual root:
     in heap numbering (supervisor = 0, worker w = node w + 1) node k's
     children are fanout*k + 1 .. fanout*k + fanout, so worker w's
     children are the workers fanout*(w+1) - 1 + j, j = 1..fanout. *)
  let children w =
    List.filter
      (fun c -> c < nworkers)
      (List.init fanout (fun j -> (fanout * (w + 1)) + j))
  in
  let roots = List.filter (fun c -> c < nworkers) (List.init fanout Fun.id) in
  (* --- scatter: each node forwards the state down before computing --- *)
  let arrival = Array.make nworkers 0. in
  (* Supervisor injects serially to the first-level workers. *)
  let sup_free = ref 0. in
  let sup_busy = ref 0. in
  let bytes_sent = ref 0 in
  List.iter
    (fun w ->
      sup_free := !sup_free +. msg_cost state_bytes;
      sup_busy := !sup_busy +. msg_cost state_bytes;
      bytes_sent := !bytes_sent + state_bytes;
      arrival.(w) <- !sup_free)
    roots;
  (* BFS in index order works because children indices exceed parents'. *)
  for w = 0 to nworkers - 1 do
    let port = ref arrival.(w) in
    List.iter
      (fun c ->
        port := !port +. msg_cost state_bytes;
        bytes_sent := !bytes_sent + state_bytes;
        arrival.(c) <- !port)
      (children w)
  done;
  (* Compute start: after forwarding finishes on this node's port. *)
  let forward_done w =
    arrival.(w)
    +. (float_of_int (List.length (children w)) *. msg_cost state_bytes)
  in
  let worker_compute = Array.init nworkers compute_s in
  let compute_end w = forward_done w +. worker_compute.(w) in
  (* --- gather: reduction tree, leaves first (children have larger
     indices, so a reverse scan sees children before parents) --- *)
  let subtree_bytes = Array.init nworkers out_bytes in
  let up_arrive = Array.make nworkers 0. in
  (* time the combined subtree message lands at the parent *)
  for w = nworkers - 1 downto 0 do
    let kids = children w in
    let ready =
      List.fold_left
        (fun acc c ->
          subtree_bytes.(w) <- subtree_bytes.(w) + subtree_bytes.(c);
          Float.max acc up_arrive.(c))
        (compute_end w) kids
    in
    (* Each hop is charged once: at the sender for interior hops, at the
       supervisor drain (below) for the final hop. *)
    up_arrive.(w) <-
      (ready +. if w < fanout then 0. else msg_cost subtree_bytes.(w))
  done;
  (* Supervisor drains the first-level results serially. *)
  let recv_free = ref 0. in
  let bytes_received = ref 0 in
  List.iter
    (fun w ->
      let start = Float.max !recv_free up_arrive.(w) in
      recv_free := start +. msg_cost subtree_bytes.(w);
      sup_busy := !sup_busy +. msg_cost subtree_bytes.(w);
      bytes_received := !bytes_received + subtree_bytes.(w))
    roots;
  {
    duration = !recv_free;
    worker_compute;
    supervisor_busy = !sup_busy;
    bytes_sent = !bytes_sent;
    bytes_received = !bytes_received;
  }

let round_desc m ~nworkers ~strategy (d : Round_desc.t) =
  round m ~nworkers ~assignment:d.assignment ~task_flops:d.task_flops
    ~task_reads:d.task_reads ~task_writes:d.task_writes
    ~state_dim:d.state_dim ~strategy

let tree_round_desc m ~fanout ~nworkers (d : Round_desc.t) =
  tree_round m ~fanout ~nworkers ~assignment:d.assignment
    ~task_flops:d.task_flops ~task_reads:d.task_reads
    ~task_writes:d.task_writes ~state_dim:d.state_dim
