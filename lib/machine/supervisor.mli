(** Supervisor/worker execution of one parallel RHS evaluation round
    (paper §3.2, Figure 10).

    The ODE solver runs on the supervisor processor.  At every solver step
    it ships the state vector to the workers, each worker evaluates the
    right-hand-side tasks assigned to it, and the results travel back to
    the supervisor, which gathers them into the derivative vector.  Message
    injection is serialised at the supervisor (it has one network port /
    memory bus), which is what eventually caps scalability.

    The round is executed on the discrete-event core ({!Event_sim}), so
    worker compute times may differ per task and per round (conditional
    right-hand sides). *)

type comm_strategy =
  | Broadcast_state
      (** every worker receives the full state vector — the paper's
          implemented scheme ("every variable that might be used is passed
          to the worker processors") *)
  | Needed_only
      (** every worker receives only the state entries its tasks read — the
          paper's planned improvement *)

type round_result = {
  duration : float;  (** wall-clock seconds of the round *)
  worker_compute : float array;  (** pure compute seconds per worker *)
  supervisor_busy : float;  (** seconds the supervisor spent on messaging *)
  bytes_sent : int;  (** state bytes shipped to workers *)
  bytes_received : int;  (** derivative bytes shipped back *)
}

val round :
  Machine.t ->
  nworkers:int ->
  assignment:int array ->
  task_flops:float array ->
  task_reads:int list array ->
  task_writes:int list array ->
  state_dim:int ->
  strategy:comm_strategy ->
  round_result
(** Simulate one round.  [assignment.(i)] is the worker (0-based) executing
    task [i]; [task_flops.(i)] its cost this round in flop units.  With
    [nworkers = 0] the supervisor computes everything locally with no
    communication.
    @raise Invalid_argument on negative worker ids or mismatched arrays. *)

val sequential_time : Machine.t -> task_flops:float array -> float
(** Time for the supervisor to evaluate the whole RHS locally. *)

type segment = {
  who : int;  (** worker index, or -1 for the supervisor *)
  t0 : float;
  t1 : float;
  kind : [ `Send | `Compute | `Recv ];
}

val round_traced :
  Machine.t ->
  nworkers:int ->
  assignment:int array ->
  task_flops:float array ->
  task_reads:int list array ->
  task_writes:int list array ->
  state_dim:int ->
  strategy:comm_strategy ->
  round_result * segment list
(** {!round} plus the activity intervals of every processor — the data
    behind a Gantt rendering of the paper's Figure 10 supervisor/worker
    scheme. *)

val round_desc :
  Machine.t -> nworkers:int -> strategy:comm_strategy -> Round_desc.t ->
  round_result
(** {!round} on a shared {!Round_desc.t} — the same descriptor the real
    domain executor ([Om_parallel.Par_exec]) consumes, so simulated and
    measured runs of one schedule stay in lockstep. *)

val tree_round :
  Machine.t ->
  fanout:int ->
  nworkers:int ->
  assignment:int array ->
  task_flops:float array ->
  task_reads:int list array ->
  task_writes:int list array ->
  state_dim:int ->
  round_result
(** Like {!round} but with tree-structured scatter and gather: the
    supervisor sends the state to [fanout] workers, each of which forwards
    copies down a [fanout]-ary tree before computing; results flow back up
    a reduction tree, each node combining its own output with its
    subtree's.  This removes the O(workers) message serialisation at the
    supervisor — the change §3.2.3 asks for ("this must be handled
    efficiently to make the application scalable").  Only the full-state
    broadcast strategy is meaningful here.
    @raise Invalid_argument if [fanout < 2] or [nworkers < 1]. *)

val tree_round_desc :
  Machine.t -> fanout:int -> nworkers:int -> Round_desc.t -> round_result
(** {!tree_round} on a shared {!Round_desc.t}. *)
