(* Binary min-heap keyed by (time, sequence number). *)
type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

let dummy = { time = 0.; seq = 0; action = ignore }
let create () = { heap = Array.make 64 dummy; size = 0; clock = 0.; next_seq = 0 }
let now t = t.clock

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* Accumulated float delays can land a hair before [now] (e.g. summing
   message times in a different order than the clock advanced).  Such
   times are "now" up to rounding, not bugs: clamp them to the clock.
   The tolerance is relative to the clock's magnitude because an
   absolute epsilon is meaningless once the clock exceeds ~1e-3 s. *)
let past_tolerance clock = 1e-9 *. Float.max 1e-6 (Float.abs clock)

let at t time action =
  if time < t.clock -. past_tolerance t.clock then
    invalid_arg "Event_sim.at: scheduling in the past";
  let time = if time < t.clock then t.clock else time in
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let after t delay action = at t (t.clock +. delay) action

let step t =
  if t.size = 0 then false
  else begin
    let ev = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    t.clock <- ev.time;
    ev.action ();
    true
  end

let run t =
  while step t do
    ()
  done

let pending t = t.size
