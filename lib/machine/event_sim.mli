(** Minimal discrete-event simulation core.

    Events are closures ordered by simulated time (ties broken by insertion
    order, so the simulation is deterministic).  The supervisor/worker
    machine model runs on top of this engine. *)

type t

val create : unit -> t
val now : t -> float

val at : t -> float -> (unit -> unit) -> unit
(** Schedule a callback at an absolute time (>= now).  Times within a
    relative rounding tolerance below [now] — which arise when float
    delays are accumulated in a different order than the clock advanced
    — are clamped to [now] rather than rejected.
    @raise Invalid_argument for times genuinely in the past. *)

val after : t -> float -> (unit -> unit) -> unit
(** Schedule a callback [delay] seconds from now. *)

val run : t -> unit
(** Execute events in time order until the queue drains. *)

val step : t -> bool
(** Execute the single earliest event; [false] when the queue is empty. *)

val pending : t -> int
