(** Parallel machine parameter sets.

    The paper evaluates on two MIMD machines (§3.2.2, §4):
    - a SPARCCenter 2000, shared-memory, 8 processors, where a 1-byte
      message takes 4 µs and the UNIX timesharing OS prevents using the
      whole machine (the "knee" in Figure 12);
    - a Parsytec GC/PP, distributed-memory (PowerPC 601 + T805 transputer
      links), where a 1-byte message takes 140 µs.

    Times are in seconds; computation cost is converted from flop units
    (see {!Om_expr.Cost}) at [flop_time] seconds per unit.  The default
    flop time corresponds to the few-Mflop/s effective scalar rate of the
    machines' 1995-era processors on transcendental-heavy code. *)

type t = {
  name : string;
  latency : float;  (** per-message start-up time, seconds *)
  per_byte : float;  (** transfer time per byte, seconds *)
  flop_time : float;  (** seconds per flop unit *)
  physical_procs : int;
  timeshared : bool;
      (** when true, using more processors than [physical_procs - 1]
          workers (one CPU belongs to the solver/OS) divides worker speed
          by the oversubscription factor *)
}

val sparccenter_2000 : t
val parsytec_gcpp : t

val t3d_class_mpp : t
(** A 1995 low-latency massively parallel machine (Cray T3D class:
    ~6 µs messages, ~128 MB/s links, 512 nodes) — the kind of platform
    the paper's §6 projection assumes. *)

val ideal : ?flop_time:float -> int -> t
(** Zero-latency machine with the given processor count: the upper bound
    the paper compares against implicitly. *)

val make :
  name:string ->
  latency:float ->
  per_byte:float ->
  ?flop_time:float ->
  ?timeshared:bool ->
  physical_procs:int ->
  unit ->
  t

val message_time : t -> bytes:int -> float
(** [latency + bytes * per_byte]. *)

val compute_time : t -> flops:float -> nworkers:int -> float
(** Time for [flops] units on one worker when [nworkers] are active,
    including the timesharing slowdown if applicable. *)

val slowdown : t -> nworkers:int -> float
